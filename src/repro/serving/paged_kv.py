"""Paged KV cache management, after vLLM (paper Section 5 cites [23]).

KV memory is carved into fixed-size blocks of ``block_tokens`` token slots;
each sequence owns a block table and grows one slot at a time.  Paging
removes external fragmentation, so the engine can admit sequences until the
physical block pool is exhausted — which is exactly how low-precision KV
(KV4) converts a 4x byte saving into a ~4x larger feasible batch.

Blocks are reference-counted, enabling vLLM-style *prefix caching*:
:meth:`PagedKVManager.fork` lets a new sequence share a parent's full
blocks (e.g. a common system prompt) and copy-on-write kicks in when a
shared tail block must grow.

Internally sequences live in a struct-of-arrays table: each sequence holds
a *stable row* (recycled through a freelist, never compacted) whose token
count and block-capacity live in numpy arrays.  That layout is what lets
the serving engine grow the whole running batch in one vectorized call
(:meth:`PagedKVManager.append_token_many`) and read pool utilization in
O(1) from running counters instead of summing over sequences.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

import repro.obs as obs

if TYPE_CHECKING:  # structural only: anything with .read() -> (K, V)
    from repro.model.kvcache import LayerKVCache

__all__ = ["PagedKVManager", "KVAllocationError", "gather_decode_batch"]


class KVAllocationError(RuntimeError):
    """Raised when a sequence holds no allocation or double-allocates."""


class PagedKVManager:
    """Block-granular KV cache allocator.

    Args:
        total_bytes: physical KV pool size.
        bytes_per_token: cache bytes per token across all layers (K and V,
            at the serving system's KV precision, incl. scale overheads).
        block_tokens: token slots per block (vLLM default 16).
    """

    def __init__(
        self, total_bytes: float, bytes_per_token: float, block_tokens: int = 16
    ):
        if total_bytes <= 0 or bytes_per_token <= 0:
            raise ValueError("sizes must be positive")
        if block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        self.bytes_per_token = bytes_per_token
        self.block_tokens = block_tokens
        self.block_bytes = bytes_per_token * block_tokens
        self.num_blocks = int(total_bytes // self.block_bytes)
        self._free = list(range(self.num_blocks))
        # Per-block reference counts, indexed by block id (0 == free).
        # An array instead of a dict so allocate/free touch the whole
        # block span of a sequence in one fancy-indexed operation.
        self._rc = np.zeros(self.num_blocks, dtype=np.int32)
        # Struct-of-arrays sequence table.  A sequence's row is *stable*
        # for its lifetime (freelist recycling, no compaction), so callers
        # may cache `sequence_row` and batch-index into the arrays.
        self._row_of: dict[int, int] = {}
        self._seq_at: list[int] = []
        self._blocks_at: list[list[int] | None] = []
        self._tokens = np.zeros(0, dtype=np.int64)
        self._block_capacity = np.zeros(0, dtype=np.int64)
        self._free_rows: list[int] = []
        # Running aggregates: O(1) utilization / fragmentation.
        self._total_tokens = 0
        self._block_refs = 0  # sum of len(block table) over live sequences
        self._shared_blocks = 0  # blocks with refcount > 1 (prefix sharing)

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    @property
    def token_capacity(self) -> int:
        """Total token slots in the pool."""
        return self.num_blocks * self.block_tokens

    @property
    def shared_blocks(self) -> int:
        """Blocks currently referenced by more than one sequence.  Zero
        means no copy-on-write can trigger, which is the precondition for
        the vectorized :meth:`append_token_many` fast path."""
        return self._shared_blocks

    def blocks_needed(self, tokens: int) -> int:
        return -(-tokens // self.block_tokens)

    def can_allocate(self, tokens: int) -> bool:
        return self.blocks_needed(tokens) <= self.free_blocks

    def utilization(self) -> float:
        """Fraction of allocated token slots actually holding tokens —
        paging keeps this near 1 (internal fragmentation only)."""
        if self._block_refs == 0:
            return 1.0
        return self._total_tokens / (self._block_refs * self.block_tokens)

    def fragmentation(self) -> float:
        """Fraction of allocated token slots wasted (internal
        fragmentation at block granularity): ``1 - utilization``."""
        return 1.0 - self.utilization()

    def freelist_fragmentation(self) -> float:
        """Scatter of the free list: ``1 - longest_contiguous_run / free``.

        0.0 means every free block sits in one contiguous id range (a
        fresh or fully-drained pool); values near 1.0 mean the LIFO churn
        of allocate/free has interleaved live and free blocks.  Paged
        attention gathers per block so this costs nothing *here* — the
        gauge exists because the ROADMAP's prefix-caching and defrag
        items need the decision signal."""
        n = len(self._free)
        if n <= 1:
            return 0.0
        ids = np.sort(np.asarray(self._free, dtype=np.int64))
        breaks = np.flatnonzero(np.diff(ids) != 1)
        bounds = np.concatenate(([-1], breaks, [n - 1]))
        longest = int(np.max(np.diff(bounds)))
        return 1.0 - longest / n

    def refcount_distribution(self) -> dict[int, int]:
        """Histogram of live block refcounts ``{refcount: blocks}`` — the
        pool-level sharing profile (rc > 1 = prefix-shared blocks)."""
        live = self._rc[self._rc > 0]
        counts, freq = np.unique(live, return_counts=True)
        return {int(c): int(f) for c, f in zip(counts, freq)}

    def blocks_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Block counts held by the given stable rows (vectorized gather;
        rows must be live — see :meth:`sequence_row`)."""
        return self._block_capacity[rows]

    def sequence_shared_blocks(self, seq_id: int) -> int:
        """How many of the sequence's blocks are shared (rc > 1) with
        another sequence — its prefix-cache footprint discount."""
        blocks = self._blocks_at[self.sequence_row(seq_id)]
        assert blocks is not None
        if not blocks:
            return 0
        return int(np.count_nonzero(self._rc[np.asarray(blocks)] > 1))

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, seq_id: int, tokens: int) -> bool:
        """Allocate a new sequence with ``tokens`` initial tokens (prefill).

        Returns False (allocating nothing) when the pool is too full.
        """
        if seq_id in self._row_of:
            raise KVAllocationError(f"sequence {seq_id} already allocated")
        need = self.blocks_needed(max(tokens, 1))
        if need > self.free_blocks:
            return False
        blocks = self._take_blocks(need)
        self._install(seq_id, blocks, tokens)
        return True

    def fork(self, parent_id: int, child_id: int, shared_tokens: int | None = None) -> bool:
        """Create ``child_id`` sharing a prefix of ``parent_id``'s cache.

        Full blocks covering the shared prefix are referenced (not copied);
        a partially-filled tail block is copied so the sequences can
        diverge.  This is the prefix-caching primitive: N requests with a
        common system prompt hold one physical copy of its KV.

        Args:
            shared_tokens: prefix length to share (defaults to the parent's
                full length; must not exceed it).

        Returns:
            False (allocating nothing) when the tail copy cannot fit.
        """
        parent_row = self._row_of.get(parent_id)
        if parent_row is None:
            raise KVAllocationError(f"sequence {parent_id} not allocated")
        if child_id in self._row_of:
            raise KVAllocationError(f"sequence {child_id} already allocated")
        parent_tokens = int(self._tokens[parent_row])
        shared = parent_tokens if shared_tokens is None else shared_tokens
        if not 0 < shared <= parent_tokens:
            raise ValueError(
                f"shared_tokens must be in (0, {parent_tokens}], got {shared}"
            )
        full = shared // self.block_tokens
        tail_tokens = shared - full * self.block_tokens
        if tail_tokens and not self._free:
            return False
        parent_blocks = self._blocks_at[parent_row]
        assert parent_blocks is not None
        blocks = parent_blocks[:full]
        if blocks:
            idx = np.asarray(blocks, dtype=np.int64)
            self._rc[idx] += 1
            self._shared_blocks += int(np.count_nonzero(self._rc[idx] == 2))
        if tail_tokens:
            blocks = blocks + [self._take_block()]  # copy of the tail block
        self._install(child_id, list(blocks), shared)
        return True

    def append_token(self, seq_id: int) -> bool:
        """Grow a sequence by one token, taking a new block if needed.

        A shared (refcount > 1) tail block is copied on write.  Returns
        False when the pool is exhausted (the caller must preempt or
        stall); the sequence is left unchanged in that case.
        """
        row = self._row_of.get(seq_id)
        if row is None:
            raise KVAllocationError(f"sequence {seq_id} not allocated")
        blocks = self._blocks_at[row]
        assert blocks is not None
        if self._tokens[row] + 1 > self._block_capacity[row] * self.block_tokens:
            if not self._free:
                return False
            blocks.append(self._take_block())
            self._block_capacity[row] += 1
            self._block_refs += 1
        elif blocks and self._rc[blocks[-1]] > 1:
            # Copy-on-write: the tail block is shared and about to change.
            if not self._free:
                return False
            old = blocks[-1]
            blocks[-1] = self._take_block()
            self._release_block(old)
            if obs.enabled():
                obs.metrics().counter(
                    "serving.kv_cow_copies_total",
                    obs.metric_help("serving.kv_cow_copies_total"),
                ).inc()
        self._tokens[row] += 1
        self._total_tokens += 1
        return True

    def append_token_many(self, rows: np.ndarray) -> bool:
        """Grow every sequence in ``rows`` by one token, all-or-nothing.

        The vectorized batch-decode fast path: ``rows`` is an array of
        *stable rows* (from :meth:`sequence_row`, one per running decode
        sequence — no duplicates).  Per-token python work is replaced by
        two array compares and one fancy-indexed increment; python remains
        only for the (rare) sequences crossing a block boundary this step.

        Returns False **without mutating anything** when the fast path
        cannot apply — some block is prefix-shared (copy-on-write might
        trigger) or the free pool cannot cover every boundary crossing —
        in which case the caller must fall back to per-sequence
        :meth:`append_token` calls and its preemption logic.  On success
        the pool state is bit-identical to that fallback loop.
        """
        if self._shared_blocks:
            return False
        need = self._tokens[rows] >= self._block_capacity[rows] * self.block_tokens
        crossing = rows[need]
        if crossing.size:
            if crossing.size > len(self._free):
                return False
            for row in crossing:
                blocks = self._blocks_at[row]
                assert blocks is not None
                blocks.append(self._take_block())
            self._block_capacity[crossing] += 1
            self._block_refs += int(crossing.size)
        self._tokens[rows] += 1
        self._total_tokens += int(rows.size)
        return True

    def free(self, seq_id: int) -> None:
        """Release a finished sequence's references; blocks return to the
        pool when their last reference drops."""
        row = self._row_of.pop(seq_id, None)
        if row is None:
            raise KVAllocationError(f"sequence {seq_id} not allocated")
        blocks = self._blocks_at[row]
        assert blocks is not None
        if blocks:
            if self._shared_blocks == 0:
                # No block anywhere is shared, so every refcount here is
                # exactly 1: the whole table returns to the pool.
                self._rc[blocks] = 0
                self._free.extend(blocks)
            else:
                # Bulk release: one fancy-indexed decrement over the block
                # table (no duplicates within one sequence), then return
                # the zero-refcount blocks to the pool *in table order* —
                # the exact free-list state the per-block loop would leave.
                idx = np.asarray(blocks, dtype=np.int64)
                self._rc[idx] -= 1
                after = self._rc[idx]
                self._shared_blocks -= int(np.count_nonzero(after == 1))
                dead = after == 0
                if dead.all():
                    self._free.extend(blocks)
                elif dead.any():
                    self._free.extend(int(b) for b in idx[dead])
        self._block_refs -= len(blocks)
        self._total_tokens -= int(self._tokens[row])
        self._blocks_at[row] = None
        self._seq_at[row] = -1
        self._tokens[row] = 0
        self._block_capacity[row] = 0
        self._free_rows.append(row)

    def _install(self, seq_id: int, blocks: list[int], tokens: int) -> None:
        """Bind a fresh sequence to a (recycled or new) stable row."""
        if self._free_rows:
            row = self._free_rows.pop()
        else:
            row = len(self._seq_at)
            self._seq_at.append(-1)
            self._blocks_at.append(None)
            if row >= self._tokens.shape[0]:
                grow = max(16, 2 * self._tokens.shape[0])
                self._tokens = np.concatenate(
                    [self._tokens, np.zeros(grow, dtype=np.int64)]
                )
                self._block_capacity = np.concatenate(
                    [self._block_capacity, np.zeros(grow, dtype=np.int64)]
                )
        self._row_of[seq_id] = row
        self._seq_at[row] = seq_id
        self._blocks_at[row] = blocks
        self._tokens[row] = tokens
        self._block_capacity[row] = len(blocks)
        self._total_tokens += tokens
        self._block_refs += len(blocks)

    def _take_block(self) -> int:
        b = self._free.pop()
        self._rc[b] = 1
        if obs.enabled():
            obs.metrics().counter(
                "serving.kv_blocks_allocated_total",
                obs.metric_help("serving.kv_blocks_allocated_total"),
            ).inc()
        return b

    def _take_blocks(self, n: int) -> list[int]:
        """Pop ``n`` blocks from the free list in one slice — same block
        ids, same order, same end state as ``n`` :meth:`_take_block`
        calls (the free list is LIFO, so the slice is reversed)."""
        if n <= 0:
            return []
        blocks = self._free[: -n - 1 : -1]
        del self._free[-n:]
        self._rc[blocks] = 1
        if obs.enabled():
            obs.metrics().counter(
                "serving.kv_blocks_allocated_total",
                obs.metric_help("serving.kv_blocks_allocated_total"),
            ).inc(n)
        return blocks

    def _release_block(self, block: int) -> None:
        rc = self._rc[block] = self._rc[block] - 1
        if rc == 1:
            self._shared_blocks -= 1
        elif rc == 0:
            self._free.append(block)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_sequences(self) -> list[int]:
        """Ids of sequences currently holding an allocation (sorted) —
        the fault injector's candidate set for KV-loss faults and the
        invariant tests' leak check."""
        return sorted(self._row_of)

    def has_sequence(self, seq_id: int) -> bool:
        return seq_id in self._row_of

    def sequence_row(self, seq_id: int) -> int:
        """The sequence's stable row in the internal SoA table — valid
        until :meth:`free`, so batch callers may cache it and pass row
        arrays to :meth:`append_token_many`."""
        row = self._row_of.get(seq_id)
        if row is None:
            raise KVAllocationError(f"sequence {seq_id} not allocated")
        return row

    @property
    def _refcount(self) -> dict[int, int]:
        """Live per-block refcounts as a dict (introspection/leak checks;
        the authoritative store is the ``_rc`` array)."""
        live = np.flatnonzero(self._rc)
        return {int(b): int(self._rc[b]) for b in live}

    def block_refcount(self, seq_id: int) -> list[int]:
        """Reference counts of a sequence's blocks (introspection)."""
        blocks = self._blocks_at[self.sequence_row(seq_id)]
        assert blocks is not None
        return [int(self._rc[b]) for b in blocks]

    def block_table(self, seq_id: int) -> list[int]:
        """The sequence's physical block ids, in token order (a copy)."""
        blocks = self._blocks_at[self.sequence_row(seq_id)]
        assert blocks is not None
        return list(blocks)

    def batch_block_tables(
        self, seq_ids: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked block tables for a batch of sequences.

        Returns ``(tables, tokens)``: ``tables`` is an int32 array of shape
        ``(batch, max_blocks)`` holding each sequence's physical block ids
        padded with ``-1``, and ``tokens`` the int64 per-sequence token
        counts.  This is the gather metadata a batched paged-attention
        kernel consumes (vLLM's ``block_tables`` tensor).
        """
        rows = [self.sequence_row(s) for s in seq_ids]
        counts = self._block_capacity[rows] if rows else np.zeros(0, np.int64)
        width = int(counts.max()) if rows else 0
        tables = np.full((len(rows), width), -1, dtype=np.int32)
        for i, row in enumerate(rows):
            blocks = self._blocks_at[row]
            assert blocks is not None
            tables[i, : len(blocks)] = blocks
        return tables, self._tokens[rows].copy()

    def sequence_tokens(self, seq_id: int) -> int:
        return int(self._tokens[self.sequence_row(seq_id)])

    def sequence_bytes(self, seq_id: int) -> float:
        return self.sequence_tokens(seq_id) * self.bytes_per_token


def gather_decode_batch(
    caches: Mapping[int, "LayerKVCache"], seq_ids: Sequence[int]
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Gather the dequantized KV histories of a running batch.

    ``caches`` maps sequence id to its per-layer quantized cache; each
    read goes through the sealed-group dequant memo
    (:meth:`repro.model.kvcache.LayerKVCache.read`), so a decode-step
    gather costs O(new tokens) per sequence, not O(history).  The returned
    ragged ``(keys, values)`` lists feed
    :func:`repro.kernels.attention.batched_decode_attention` — one stacked
    dequant+attention call for the whole batch (the arrays are read-only
    memo views; valid until the next append).
    """
    keys: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for sid in seq_ids:
        k, v = caches[sid].read()
        keys.append(k)
        values.append(v)
    return keys, values
