"""Paged KV cache management, after vLLM (paper Section 5 cites [23]).

KV memory is carved into fixed-size blocks of ``block_tokens`` token slots;
each sequence owns a block table and grows one slot at a time.  Paging
removes external fragmentation, so the engine can admit sequences until the
physical block pool is exhausted — which is exactly how low-precision KV
(KV4) converts a 4x byte saving into a ~4x larger feasible batch.

Blocks are reference-counted, enabling vLLM-style *prefix caching*:
:meth:`PagedKVManager.fork` lets a new sequence share a parent's full
blocks (e.g. a common system prompt) and copy-on-write kicks in when a
shared tail block must grow.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.obs as obs

__all__ = ["PagedKVManager", "KVAllocationError"]


class KVAllocationError(RuntimeError):
    """Raised when a sequence holds no allocation or double-allocates."""


@dataclass
class _Sequence:
    blocks: list[int]
    tokens: int


class PagedKVManager:
    """Block-granular KV cache allocator.

    Args:
        total_bytes: physical KV pool size.
        bytes_per_token: cache bytes per token across all layers (K and V,
            at the serving system's KV precision, incl. scale overheads).
        block_tokens: token slots per block (vLLM default 16).
    """

    def __init__(
        self, total_bytes: float, bytes_per_token: float, block_tokens: int = 16
    ):
        if total_bytes <= 0 or bytes_per_token <= 0:
            raise ValueError("sizes must be positive")
        if block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        self.bytes_per_token = bytes_per_token
        self.block_tokens = block_tokens
        self.block_bytes = bytes_per_token * block_tokens
        self.num_blocks = int(total_bytes // self.block_bytes)
        self._free = list(range(self.num_blocks))
        self._sequences: dict[int, _Sequence] = {}
        self._refcount: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    @property
    def token_capacity(self) -> int:
        """Total token slots in the pool."""
        return self.num_blocks * self.block_tokens

    def blocks_needed(self, tokens: int) -> int:
        return -(-tokens // self.block_tokens)

    def can_allocate(self, tokens: int) -> bool:
        return self.blocks_needed(tokens) <= self.free_blocks

    def utilization(self) -> float:
        """Fraction of allocated token slots actually holding tokens —
        paging keeps this near 1 (internal fragmentation only)."""
        allocated = sum(len(s.blocks) for s in self._sequences.values())
        if allocated == 0:
            return 1.0
        used = sum(s.tokens for s in self._sequences.values())
        return used / (allocated * self.block_tokens)

    def fragmentation(self) -> float:
        """Fraction of allocated token slots wasted (internal
        fragmentation at block granularity): ``1 - utilization``."""
        return 1.0 - self.utilization()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, seq_id: int, tokens: int) -> bool:
        """Allocate a new sequence with ``tokens`` initial tokens (prefill).

        Returns False (allocating nothing) when the pool is too full.
        """
        if seq_id in self._sequences:
            raise KVAllocationError(f"sequence {seq_id} already allocated")
        need = self.blocks_needed(max(tokens, 1))
        if need > self.free_blocks:
            return False
        blocks = [self._take_block() for _ in range(need)]
        self._sequences[seq_id] = _Sequence(blocks=blocks, tokens=tokens)
        return True

    def fork(self, parent_id: int, child_id: int, shared_tokens: int | None = None) -> bool:
        """Create ``child_id`` sharing a prefix of ``parent_id``'s cache.

        Full blocks covering the shared prefix are referenced (not copied);
        a partially-filled tail block is copied so the sequences can
        diverge.  This is the prefix-caching primitive: N requests with a
        common system prompt hold one physical copy of its KV.

        Args:
            shared_tokens: prefix length to share (defaults to the parent's
                full length; must not exceed it).

        Returns:
            False (allocating nothing) when the tail copy cannot fit.
        """
        parent = self._sequences.get(parent_id)
        if parent is None:
            raise KVAllocationError(f"sequence {parent_id} not allocated")
        if child_id in self._sequences:
            raise KVAllocationError(f"sequence {child_id} already allocated")
        shared = parent.tokens if shared_tokens is None else shared_tokens
        if not 0 < shared <= parent.tokens:
            raise ValueError(
                f"shared_tokens must be in (0, {parent.tokens}], got {shared}"
            )
        full = shared // self.block_tokens
        tail_tokens = shared - full * self.block_tokens
        if tail_tokens and not self._free:
            return False
        blocks = parent.blocks[:full]
        for b in blocks:
            self._refcount[b] += 1
        if tail_tokens:
            blocks = blocks + [self._take_block()]  # copy of the tail block
        self._sequences[child_id] = _Sequence(blocks=list(blocks), tokens=shared)
        return True

    def append_token(self, seq_id: int) -> bool:
        """Grow a sequence by one token, taking a new block if needed.

        A shared (refcount > 1) tail block is copied on write.  Returns
        False when the pool is exhausted (the caller must preempt or
        stall); the sequence is left unchanged in that case.
        """
        seq = self._sequences.get(seq_id)
        if seq is None:
            raise KVAllocationError(f"sequence {seq_id} not allocated")
        if seq.tokens + 1 > len(seq.blocks) * self.block_tokens:
            if not self._free:
                return False
            seq.blocks.append(self._take_block())
        elif seq.blocks and self._refcount[seq.blocks[-1]] > 1:
            # Copy-on-write: the tail block is shared and about to change.
            if not self._free:
                return False
            old = seq.blocks[-1]
            seq.blocks[-1] = self._take_block()
            self._release_block(old)
            if obs.enabled():
                obs.metrics().counter(
                    "serving.kv_cow_copies_total",
                    obs.metric_help("serving.kv_cow_copies_total"),
                ).inc()
        seq.tokens += 1
        return True

    def free(self, seq_id: int) -> None:
        """Release a finished sequence's references; blocks return to the
        pool when their last reference drops."""
        seq = self._sequences.pop(seq_id, None)
        if seq is None:
            raise KVAllocationError(f"sequence {seq_id} not allocated")
        for b in seq.blocks:
            self._release_block(b)

    def _take_block(self) -> int:
        b = self._free.pop()
        self._refcount[b] = 1
        if obs.enabled():
            obs.metrics().counter(
                "serving.kv_blocks_allocated_total",
                obs.metric_help("serving.kv_blocks_allocated_total"),
            ).inc()
        return b

    def _release_block(self, block: int) -> None:
        self._refcount[block] -= 1
        if self._refcount[block] == 0:
            del self._refcount[block]
            self._free.append(block)

    def live_sequences(self) -> list[int]:
        """Ids of sequences currently holding an allocation (sorted) —
        the fault injector's candidate set for KV-loss faults and the
        invariant tests' leak check."""
        return sorted(self._sequences)

    def has_sequence(self, seq_id: int) -> bool:
        return seq_id in self._sequences

    def block_refcount(self, seq_id: int) -> list[int]:
        """Reference counts of a sequence's blocks (introspection)."""
        seq = self._sequences.get(seq_id)
        if seq is None:
            raise KVAllocationError(f"sequence {seq_id} not allocated")
        return [self._refcount[b] for b in seq.blocks]

    def sequence_tokens(self, seq_id: int) -> int:
        seq = self._sequences.get(seq_id)
        if seq is None:
            raise KVAllocationError(f"sequence {seq_id} not allocated")
        return seq.tokens

    def sequence_bytes(self, seq_id: int) -> float:
        return self.sequence_tokens(seq_id) * self.bytes_per_token
