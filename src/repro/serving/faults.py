"""Deterministic fault injection for the serving engine.

Real deployments of the paper's serving framework (Section 6) see transient
kernel faults, lost KV blocks, and straggling iterations long before they
see the clean homogeneous traces of the evaluation.  A :class:`FaultPlan`
describes a reproducible fault process the engine consults each step:

* **kernel fault** — the step's compute is spent but its results are
  discarded (no tokens appended, no prefill progress); the engine retries
  the same work next iteration;
* **KV loss** — one running sequence's cache blocks are corrupted/lost;
  the victim is reset and re-queued with backoff (recompute-style), or
  failed once its retry budget is exhausted;
* **straggler** — the step takes ``straggler_slowdown`` times longer
  (interference, clock throttling, a slow collective);
* **request abort** — a per-request transient failure that aborts the
  request's *first* attempt after a deterministic number of output tokens.

Every draw derives from ``(seed, stream, index)`` via
:func:`numpy.random.default_rng`, so a plan is a pure function of its
configuration: the same seed replays the same fault sequence regardless of
wall-clock time or call order, which is what makes chaos runs debuggable
and CI-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["FaultKind", "StepFault", "FaultPlan"]

#: RNG stream tags: keep per-step and per-request draws independent.
_STEP_STREAM = 1
_REQUEST_STREAM = 2


class FaultKind(Enum):
    KERNEL_FAULT = "kernel_fault"
    KV_LOSS = "kv_loss"
    STRAGGLER = "straggler"
    REQUEST_ABORT = "request_abort"


@dataclass(frozen=True)
class StepFault:
    """One injected step-level fault.

    Attributes:
        kind: which failure mode fired.
        slowdown: step-duration multiplier (stragglers only; 1.0 otherwise).
        victim_draw: uniform [0, 1) draw the engine maps onto its running
            batch to pick the KV-loss victim (KV loss only).
    """

    kind: FaultKind
    slowdown: float = 1.0
    victim_draw: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault process.

    Rates are per-step (or per-request) probabilities in ``[0, 1]``.  At
    most one step fault fires per engine iteration; when the rates sum past
    1 the earlier kinds take priority (kernel fault, then KV loss, then
    straggler).

    Attributes:
        seed: RNG seed; fixes the whole fault sequence.
        step_fault_rate: probability a step's results are discarded.
        kv_loss_rate: probability a step loses one sequence's KV blocks.
        straggler_rate: probability a step straggles.
        straggler_slowdown: duration multiplier for straggling steps.
        request_abort_rate: probability a request's first attempt aborts
            partway through decoding.
    """

    seed: int = 0
    step_fault_rate: float = 0.0
    kv_loss_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_slowdown: float = 4.0
    request_abort_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "step_fault_rate",
            "kv_loss_rate",
            "straggler_rate",
            "request_abort_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")

    @property
    def empty(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.step_fault_rate == 0.0
            and self.kv_loss_rate == 0.0
            and self.straggler_rate == 0.0
            and self.request_abort_rate == 0.0
        )

    def step_fault(self, step_index: int) -> StepFault | None:
        """The fault (if any) injected into compute step ``step_index``."""
        rng = np.random.default_rng([self.seed, _STEP_STREAM, step_index])
        u = rng.random()
        victim_draw = rng.random()
        edge = self.step_fault_rate
        if u < edge:
            return StepFault(FaultKind.KERNEL_FAULT)
        edge += self.kv_loss_rate
        if u < edge:
            return StepFault(FaultKind.KV_LOSS, victim_draw=victim_draw)
        edge += self.straggler_rate
        if u < edge:
            return StepFault(
                FaultKind.STRAGGLER, slowdown=self.straggler_slowdown
            )
        return None

    def request_abort_point(
        self, request_id: int, max_new_tokens: int
    ) -> int | None:
        """Output-token index at which ``request_id``'s first attempt
        aborts, or None if this request never faults."""
        rng = np.random.default_rng([self.seed, _REQUEST_STREAM, request_id])
        if rng.random() >= self.request_abort_rate:
            return None
        return int(rng.integers(1, max_new_tokens + 1))
