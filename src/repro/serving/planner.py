"""Deployment planner: pick a serving configuration for a workload.

Given a model, a GPU budget, and a workload shape, the planner enumerates
(system, tensor-parallel degree, batch cap) candidates on the simulator and
recommends the feasible configuration with the best throughput — optionally
subject to a TTFT ceiling.  This is the "which config do I deploy?" tool an
operations team wants on top of the paper's raw results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.spec import A100_80G_SXM4, GPUSpec
from repro.model.config import ModelConfig
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.metrics import LatencyReport
from repro.serving.request import make_batch_requests
from repro.serving.systems import build_system

__all__ = ["PlanCandidate", "DeploymentPlan", "plan_deployment"]

_DEFAULT_SYSTEMS = ("trtllm-fp16", "trtllm-w4a16", "trtllm-w8a8", "qserve", "comet")


@dataclass(frozen=True)
class PlanCandidate:
    """One evaluated deployment configuration."""

    system: str
    tensor_parallel: int
    batch: int
    throughput: float
    ttft_p95: float
    weight_gb: float
    kv_pool_gb: float
    feasible: bool
    rejected_reason: str = ""


@dataclass
class DeploymentPlan:
    """Planner output: the recommendation plus every candidate evaluated."""

    best: PlanCandidate | None
    candidates: list[PlanCandidate] = field(default_factory=list)

    def summary(self) -> str:
        if self.best is None:
            return "no feasible configuration found"
        b = self.best
        return (
            f"deploy {b.system} TP={b.tensor_parallel} batch<={b.batch}: "
            f"{b.throughput:.0f} tok/s, TTFT p95 {b.ttft_p95 * 1e3:.0f} ms"
        )


def plan_deployment(
    model: ModelConfig,
    prompt_len: int,
    out_len: int,
    num_gpus: int = 1,
    spec: GPUSpec = A100_80G_SXM4,
    systems: tuple[str, ...] = _DEFAULT_SYSTEMS,
    max_batch: int = 256,
    ttft_p95_ceiling: float | None = None,
    probe_requests: int | None = None,
) -> DeploymentPlan:
    """Evaluate deployment candidates and recommend the best.

    Args:
        model: model architecture.
        prompt_len / out_len: workload shape.
        num_gpus: GPUs available; TP degrees dividing this (and the model's
            kv-head count) are considered.
        systems: serving-system presets to consider.
        max_batch: upper bound on the batch cap.
        ttft_p95_ceiling: optional latency SLO in seconds; candidates over
            it are rejected.
        probe_requests: request count per evaluation (default: one full
            feasible batch).

    Returns:
        :class:`DeploymentPlan` with the best candidate (or None).
    """
    if prompt_len < 1 or out_len < 1:
        raise ValueError("prompt_len and out_len must be positive")
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    degrees = [
        d
        for d in (1, 2, 4, 8)
        if d <= num_gpus
        and num_gpus % d == 0
        and model.n_kv_heads % d == 0
        and model.d_ffn % d == 0
    ]
    candidates: list[PlanCandidate] = []
    for system_name in systems:
        for degree in degrees:
            cand = _evaluate(
                model, system_name, degree, prompt_len, out_len,
                spec, max_batch, ttft_p95_ceiling, probe_requests,
            )
            candidates.append(cand)
    feasible = [c for c in candidates if c.feasible]
    best = max(feasible, key=lambda c: c.throughput) if feasible else None
    return DeploymentPlan(best=best, candidates=candidates)


def _evaluate(
    model, system_name, degree, prompt_len, out_len, spec, max_batch,
    ttft_ceiling, probe_requests,
) -> PlanCandidate:
    try:
        engine = ServingEngine(
            model,
            build_system(system_name, spec),
            spec=spec,
            config=EngineConfig(max_batch=max_batch, tensor_parallel=degree),
        )
    except ValueError:
        return PlanCandidate(
            system=system_name,
            tensor_parallel=degree,
            batch=0,
            throughput=0.0,
            ttft_p95=float("inf"),
            weight_gb=0.0,
            kv_pool_gb=0.0,
            feasible=False,
            rejected_reason="weights do not fit",
        )
    batch = min(max(engine.plan.max_batch(prompt_len + out_len), 0), max_batch)
    if batch == 0:
        return PlanCandidate(
            system=system_name,
            tensor_parallel=degree,
            batch=0,
            throughput=0.0,
            ttft_p95=float("inf"),
            weight_gb=engine.plan.weight_bytes / 1e9,
            kv_pool_gb=engine.plan.kv_pool_bytes / 1e9,
            feasible=False,
            rejected_reason="KV pool cannot hold one sequence",
        )
    n = probe_requests or batch
    requests = make_batch_requests(n, prompt_len, out_len)
    report = engine.run(requests)
    latency = LatencyReport.from_requests(requests)
    feasible = True
    reason = ""
    if ttft_ceiling is not None and latency.ttft_p95 > ttft_ceiling:
        feasible = False
        reason = (
            f"TTFT p95 {latency.ttft_p95 * 1e3:.0f} ms over the "
            f"{ttft_ceiling * 1e3:.0f} ms ceiling"
        )
    return PlanCandidate(
        system=system_name,
        tensor_parallel=degree,
        batch=batch,
        throughput=report.throughput,
        ttft_p95=latency.ttft_p95,
        weight_gb=engine.plan.weight_bytes / 1e9,
        kv_pool_gb=engine.plan.kv_pool_bytes / 1e9,
        feasible=feasible,
        rejected_reason=reason,
    )
