"""Workload generators for serving experiments.

Besides the paper's homogeneous fixed-length batches
(:func:`repro.serving.request.make_batch_requests`), real serving studies
need arrival processes and length distributions; these generators produce
seeded Poisson traces with log-normal-ish length variation.
"""

from __future__ import annotations

import numpy as np

from repro.serving.request import Request

__all__ = [
    "make_poisson_trace",
    "make_heterogeneous_requests",
    "make_overload_trace",
]


def make_poisson_trace(
    num_requests: int,
    arrival_rate: float,
    mean_prompt_len: int = 512,
    mean_new_tokens: int = 128,
    seed: int = 0,
) -> list[Request]:
    """Requests with exponential inter-arrival gaps and varied lengths.

    Args:
        num_requests: trace length.
        arrival_rate: mean arrivals per simulated second.
        mean_prompt_len / mean_new_tokens: geometric means of the length
            distributions (lengths vary ~2x around them).
        seed: RNG seed.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    prompts = np.maximum(
        1, (mean_prompt_len * np.exp(rng.normal(0, 0.4, num_requests))).astype(int)
    )
    outputs = np.maximum(
        1, (mean_new_tokens * np.exp(rng.normal(0, 0.4, num_requests))).astype(int)
    )
    return [
        Request(
            request_id=i,
            prompt_len=int(prompts[i]),
            max_new_tokens=int(outputs[i]),
            arrival_time=float(arrivals[i]),
        )
        for i in range(num_requests)
    ]


def make_overload_trace(
    num_requests: int,
    kv_token_capacity: int,
    overload: float = 2.0,
    burst_seconds: float = 1.0,
    output_fraction: float = 0.25,
    ttft_slo: float | None = None,
    e2e_slo: float | None = None,
    seed: int = 0,
) -> list[Request]:
    """A burst whose aggregate token demand exceeds the KV pool.

    The offered load (sum of every request's ``total_len``) is scaled to
    ``overload`` times ``kv_token_capacity`` and arrives inside a short
    window, so the engine must queue, shed, or reject — the stress setting
    for the resilience layer (``docs/resilience.md``).  Lengths vary
    exponentially across requests; each splits ``1 - output_fraction`` /
    ``output_fraction`` between prompt and output.

    Args:
        num_requests: trace length.
        kv_token_capacity: the target engine's ``kv.token_capacity``.
        overload: offered-load multiple of the pool capacity (> 0; values
            above ~1 guarantee sustained KV pressure).
        burst_seconds: arrival window width.
        output_fraction: fraction of each request's tokens that is output.
        ttft_slo / e2e_slo: optional per-request SLOs, applied uniformly.
        seed: RNG seed.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if kv_token_capacity < 1:
        raise ValueError("kv_token_capacity must be positive")
    if overload <= 0:
        raise ValueError("overload must be positive")
    if burst_seconds < 0:
        raise ValueError("burst_seconds must be >= 0")
    if not 0.0 < output_fraction < 1.0:
        raise ValueError("output_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    weights = rng.exponential(1.0, size=num_requests)
    lengths = np.maximum(
        8, (weights / weights.sum() * overload * kv_token_capacity).astype(int)
    )
    arrivals = np.sort(rng.uniform(0.0, burst_seconds, size=num_requests))
    out = []
    for i, total in enumerate(lengths):
        new_tokens = max(1, int(total * output_fraction))
        out.append(
            Request(
                request_id=i,
                prompt_len=max(1, int(total) - new_tokens),
                max_new_tokens=new_tokens,
                arrival_time=float(arrivals[i]),
                ttft_slo=ttft_slo,
                e2e_slo=e2e_slo,
            )
        )
    return out


def make_heterogeneous_requests(
    num_requests: int,
    prompt_range: tuple[int, int] = (64, 1024),
    output_range: tuple[int, int] = (16, 512),
    seed: int = 0,
) -> list[Request]:
    """Uniformly varied lengths, all arriving at time zero."""
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    return [
        Request(
            request_id=i,
            prompt_len=int(rng.integers(prompt_range[0], prompt_range[1] + 1)),
            max_new_tokens=int(rng.integers(output_range[0], output_range[1] + 1)),
        )
        for i in range(num_requests)
    ]
