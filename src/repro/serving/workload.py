"""Workload generators for serving experiments.

Besides the paper's homogeneous fixed-length batches
(:func:`repro.serving.request.make_batch_requests`), real serving studies
need arrival processes and length distributions; these generators produce
seeded Poisson traces with log-normal-ish length variation.
"""

from __future__ import annotations

import numpy as np

from repro.serving.request import Request

__all__ = ["make_poisson_trace", "make_heterogeneous_requests"]


def make_poisson_trace(
    num_requests: int,
    arrival_rate: float,
    mean_prompt_len: int = 512,
    mean_new_tokens: int = 128,
    seed: int = 0,
) -> list[Request]:
    """Requests with exponential inter-arrival gaps and varied lengths.

    Args:
        num_requests: trace length.
        arrival_rate: mean arrivals per simulated second.
        mean_prompt_len / mean_new_tokens: geometric means of the length
            distributions (lengths vary ~2x around them).
        seed: RNG seed.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    prompts = np.maximum(
        1, (mean_prompt_len * np.exp(rng.normal(0, 0.4, num_requests))).astype(int)
    )
    outputs = np.maximum(
        1, (mean_new_tokens * np.exp(rng.normal(0, 0.4, num_requests))).astype(int)
    )
    return [
        Request(
            request_id=i,
            prompt_len=int(prompts[i]),
            max_new_tokens=int(outputs[i]),
            arrival_time=float(arrivals[i]),
        )
        for i in range(num_requests)
    ]


def make_heterogeneous_requests(
    num_requests: int,
    prompt_range: tuple[int, int] = (64, 1024),
    output_range: tuple[int, int] = (16, 512),
    seed: int = 0,
) -> list[Request]:
    """Uniformly varied lengths, all arriving at time zero."""
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    return [
        Request(
            request_id=i,
            prompt_len=int(rng.integers(prompt_range[0], prompt_range[1] + 1)),
            max_new_tokens=int(rng.integers(output_range[0], output_range[1] + 1)),
        )
        for i in range(num_requests)
    ]
