"""Vectorized bookkeeping structures for the serving engine's hot loop.

At high concurrency (thousands of queued requests, hundreds running) the
engine's per-step cost is dominated not by the simulated kernels but by
python-level scans: phase partitioning, context-token sums, deadline
checks, retry-queue sorts.  This module holds the three structures that
erase those scans:

* :class:`BatchState` — a struct-of-arrays mirror of the running batch
  (context length, generated count, phase flag, deadlines, KV row) kept in
  admission order, so each step's partition/aggregate/advance work is a
  handful of numpy operations instead of O(batch) python;
* :class:`DeadlineHeap` — a lazy-deletion min-heap over waiting requests'
  deadlines, giving the per-step expiry sweep O(expired · log n) cost and
  fixing the head-of-queue-only expiry bug (deep-queued requests past
  their deadline are now shed no matter where they sit in the deque);
* :class:`RetryHeap` — backed-off retries keyed ``(not_before,
  request_id)``, replacing a per-step full sort with O(log n) pushes.

Everything here is pure bookkeeping over data the engine already tracks;
the engine's *decisions* (and therefore its reports) are bit-identical to
the per-request scalar loops, which stay available as the oracle behind
``EngineConfig.vectorized=False``.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.serving.request import Phase, Request

__all__ = ["BatchState", "DeadlineHeap", "RetryHeap"]

#: Initial array capacity; grows by doubling.
_INITIAL_CAPACITY = 64


class BatchState:
    """Struct-of-arrays view of the running batch, in admission order.

    The request list (``reqs``) stays the source of truth for identity and
    ordering; the parallel numpy arrays carry the per-step hot fields.  A
    request's ``generated`` counter is advanced *in the array* on the fast
    path and written back to the object lazily (:meth:`sync`) at lifecycle
    events — finish, preemption, expiry, fault — and before any scalar
    fallback step, so the object view is always accurate where it is read.
    ``phase`` and ``prefill_progress`` mutate rarely (once per request /
    once per chunk) and are kept eagerly consistent on both sides.
    """

    def __init__(self) -> None:
        self.reqs: list[Request] = []
        self._cap = _INITIAL_CAPACITY
        self._ctx = np.zeros(self._cap, dtype=np.int64)
        self._gen = np.zeros(self._cap, dtype=np.int64)
        self._max_new = np.zeros(self._cap, dtype=np.int64)
        self._decoding = np.zeros(self._cap, dtype=bool)
        self._e2e_dl = np.zeros(self._cap, dtype=np.float64)
        self._ttft_dl = np.zeros(self._cap, dtype=np.float64)
        self._kv_row = np.zeros(self._cap, dtype=np.int64)
        self._abort_at = np.full(self._cap, -1, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.reqs)

    # ------------------------------------------------------------ growth

    def _grow(self) -> None:
        new_cap = self._cap * 2
        for name in ("_ctx", "_gen", "_max_new", "_decoding", "_e2e_dl",
                     "_ttft_dl", "_kv_row", "_abort_at"):
            old = getattr(self, name)
            fresh = np.zeros(new_cap, dtype=old.dtype)
            fresh[: self._cap] = old
            setattr(self, name, fresh)
        self._cap = new_cap

    def add(self, req: Request, kv_row: int, abort_at: int = -1) -> None:
        """Append a just-admitted request (phase PREFILL or DECODE)."""
        i = len(self.reqs)
        if i >= self._cap:
            self._grow()
        self.reqs.append(req)
        self._ctx[i] = req.context_len
        self._gen[i] = req.generated
        self._max_new[i] = req.max_new_tokens
        self._decoding[i] = req.phase is Phase.DECODE
        self._e2e_dl[i] = req.e2e_deadline
        self._ttft_dl[i] = req.ttft_deadline
        self._kv_row[i] = kv_row
        self._abort_at[i] = abort_at

    def rebuild(self, reqs: list[Request], kv_rows: list[int],
                abort_ats: list[int]) -> None:
        """Re-mirror the batch from scratch (after a scalar fallback step
        restructured the running list arbitrarily)."""
        self.reqs = reqs
        n = len(reqs)
        while n > self._cap:
            self._grow()
        for i, req in enumerate(reqs):
            self._ctx[i] = req.context_len
            self._gen[i] = req.generated
            self._max_new[i] = req.max_new_tokens
            self._decoding[i] = req.phase is Phase.DECODE
            self._e2e_dl[i] = req.e2e_deadline
            self._ttft_dl[i] = req.ttft_deadline
            self._kv_row[i] = kv_rows[i]
            self._abort_at[i] = abort_ats[i]

    # ------------------------------------------------------------- views

    @property
    def decoding(self) -> np.ndarray:
        return self._decoding[: len(self.reqs)]

    @property
    def ctx(self) -> np.ndarray:
        return self._ctx[: len(self.reqs)]

    @property
    def gen(self) -> np.ndarray:
        return self._gen[: len(self.reqs)]

    @property
    def max_new(self) -> np.ndarray:
        return self._max_new[: len(self.reqs)]

    @property
    def e2e_dl(self) -> np.ndarray:
        return self._e2e_dl[: len(self.reqs)]

    @property
    def ttft_dl(self) -> np.ndarray:
        return self._ttft_dl[: len(self.reqs)]

    @property
    def kv_row(self) -> np.ndarray:
        return self._kv_row[: len(self.reqs)]

    @property
    def abort_at(self) -> np.ndarray:
        return self._abort_at[: len(self.reqs)]

    # ----------------------------------------------------------- updates

    def mark_decode(self, i: int) -> None:
        """A chunked prefill completed: the request decodes from now on."""
        self._decoding[i] = True
        self._ctx[i] = self.reqs[i].context_len

    def set_prefill_progress(self, i: int, progress: int) -> None:
        self._ctx[i] = progress

    def advance(self, idx: np.ndarray) -> None:
        """Record one decoded token for every index in ``idx``."""
        self._ctx[idx] += 1
        self._gen[idx] += 1

    def sync(self, i: int) -> Request:
        """Write the array-side ``generated`` back to the object."""
        req = self.reqs[i]
        req.generated = int(self._gen[i])
        return req

    def sync_all(self) -> None:
        gen = self._gen
        for i, req in enumerate(self.reqs):
            req.generated = int(gen[i])

    def remove(self, idx: np.ndarray) -> None:
        """Drop the (ascending) indices, preserving relative order of the
        survivors — admission order is what victim selection keys on."""
        n = len(self.reqs)
        keep = np.ones(n, dtype=bool)
        keep[idx] = False
        kept = int(keep.sum())
        for name in ("_ctx", "_gen", "_max_new", "_decoding", "_e2e_dl",
                     "_ttft_dl", "_kv_row", "_abort_at"):
            arr = getattr(self, name)
            arr[:kept] = arr[:n][keep]
        drop = set(int(i) for i in idx)
        self.reqs[:] = [r for i, r in enumerate(self.reqs) if i not in drop]


class DeadlineHeap:
    """Lazy-deletion min-heap over waiting requests' queue deadlines.

    Tracks every WAITING request with an SLO by ``min(ttft_deadline,
    e2e_deadline)``.  Entries are never removed eagerly: a popped entry
    whose request is no longer WAITING (admitted, already expired, or
    terminal) is simply discarded, and a preempted request is re-pushed on
    its way back to the queue.  ``expired`` therefore yields exactly the
    queued requests whose deadline has passed — wherever they sit in the
    FIFO deque — in deterministic (deadline, arrival, id) order.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, float, int, Request]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, req: Request) -> None:
        """Track a WAITING request; no-op for requests without SLOs."""
        deadline = min(req.ttft_deadline, req.e2e_deadline)
        if deadline == float("inf"):
            return
        heapq.heappush(
            self._heap, (deadline, req.arrival_time, req.request_id, req)
        )

    def expired(self, clock: float) -> list[Request]:
        """Pop every tracked request whose deadline passed by ``clock``
        and is still WAITING (stale entries are discarded)."""
        out: list[Request] = []
        heap = self._heap
        while heap and heap[0][0] < clock:
            _, _, _, req = heapq.heappop(heap)
            if req.phase is Phase.WAITING:
                out.append(req)
        return out


class RetryHeap:
    """Backed-off retries ordered by ``(not_before, request_id)`` — the
    same order the engine's former per-step sort produced, at O(log n)
    per push and O(1) peeks."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Request]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, req: Request) -> None:
        heapq.heappush(self._heap, (req.not_before, req.request_id, req))

    def peek(self) -> Request:
        return self._heap[0][2]

    def pop(self) -> Request:
        return heapq.heappop(self._heap)[2]

    def next_ready_time(self) -> float:
        """Earliest ``not_before`` among queued retries (inf when empty)."""
        return self._heap[0][0] if self._heap else float("inf")
