"""COMET: Towards Practical W4A4KV4 LLMs Serving — full Python reproduction.

Subpackages:
    core      — FMPQ fine-grained mixed-precision quantization (paper §3)
    baselines — SmoothQuant / GPTQ / AWQ / OmniQuant / QoQ / RTN quantizers
    model     — from-scratch numpy transformer substrate
    training  — numpy trainer producing the tiny evaluation models
    data      — synthetic corpus, perplexity and zero-shot evaluation
    gpu       — A100-class GPU timing simulator
    kernels   — COMET-W4Ax kernel and baseline GEMM kernels (paper §4)
    serving   — paged-KV serving engine and system presets (paper §5)
    analysis  — roofline and activation-distribution analysis
"""

from repro.api import (
    KERNELS,
    QuantizedModel,
    build_engine,
    kernel_latency,
    quantize_model,
)

__all__ = [
    "KERNELS",
    "QuantizedModel",
    "build_engine",
    "kernel_latency",
    "quantize_model",
]

__version__ = "1.0.0"
