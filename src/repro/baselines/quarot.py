"""QuaRot/SpinQuant-style rotation baseline (paper citations [4], [32]).

Instead of isolating outlier channels (FMPQ's permutation), the rotation
family multiplies activations by an orthogonal matrix ``Q`` — a Hadamard
transform in QuaRot — which *spreads* every outlier's energy across all
channels, flattening the distribution enough for uniform low-bit
quantization.  The inverse rotation folds into the weights exactly:

    y = x W^T = (x Q) (W Q)^T        for orthogonal Q,

so the model function is unchanged and only quantization error differs.

This gives the repo the third point in the outlier-handling design space:

* naive W4A4              — ignore outliers (collapses);
* FMPQ W4Ax               — isolate outliers into INT8 blocks (the paper);
* rotated W4A4 (here)     — smear outliers and stay uniform INT4.
"""

from __future__ import annotations

import numpy as np

from repro.core.intquant import (
    INT4,
    QuantSpec,
    quantize_symmetric,
    symmetric_scale,
)
from repro.core.weightquant import QuantizedWeight, quantize_weight

__all__ = ["hadamard_matrix", "random_orthogonal", "RotatedW4A4Linear", "quarot_linear"]


def hadamard_matrix(n: int) -> np.ndarray:
    """Normalized Walsh-Hadamard matrix of power-of-two size ``n``."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"Hadamard size must be a power of two, got {n}")
    h = np.array([[1.0]], dtype=np.float32)
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h / np.sqrt(n, dtype=np.float32)


def random_orthogonal(n: int, seed: int = 0) -> np.ndarray:
    """Haar-random orthogonal matrix (for non-power-of-two widths)."""
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    q, r = np.linalg.qr(rng.normal(size=(n, n)))
    # Fix signs so the distribution is Haar.
    return (q * np.sign(np.diag(r))).astype(np.float32)


def _rotation_for(n: int, seed: int = 0) -> np.ndarray:
    if n & (n - 1) == 0:
        return hadamard_matrix(n)
    return random_orthogonal(n, seed)


class RotatedW4A4Linear:
    """W4A4 with an outlier-smearing rotation folded into the weights.

    Runtime path: rotate the activation (FP16 matmul by ``Q``), per-token
    INT4 quantization, integer GEMM against the INT4-quantized rotated
    weight, rescale.
    """

    def __init__(
        self,
        weight: np.ndarray,
        group_size: int = 128,
        act_spec: QuantSpec = INT4,
        bias: np.ndarray | None = None,
        seed: int = 0,
        name: str = "",
    ):
        weight = np.asarray(weight, dtype=np.float32)
        self.rotation = _rotation_for(weight.shape[1], seed)
        self.qweight: QuantizedWeight = quantize_weight(
            weight @ self.rotation, group_size=group_size, clip_grid=(1.0, 0.95, 0.9)
        )
        self.act_spec = act_spec
        self.bias = bias
        self.name = name

    @property
    def in_features(self) -> int:
        return self.qweight.in_features

    @property
    def out_features(self) -> int:
        return self.qweight.out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        lead = x.shape[:-1]
        rotated = x.reshape(-1, self.in_features) @ self.rotation
        a_scale = symmetric_scale(rotated, self.act_spec, axis=-1)
        a_codes = quantize_symmetric(rotated, a_scale, self.act_spec).astype(np.int64)
        g = self.qweight.group_size
        out = np.zeros((rotated.shape[0], self.out_features), dtype=np.float32)
        for gi in range(self.qweight.num_groups):
            acc = a_codes[:, gi * g : (gi + 1) * g] @ (
                self.qweight.group_codes(gi).astype(np.int64).T
            )
            out += (
                acc.astype(np.float32)
                * a_scale
                * self.qweight.group_scales(gi)[None, :]
            )
        out = out.reshape(*lead, self.out_features)
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def memory_bytes(self) -> int:
        # Hadamard rotations need no storage (computed on the fly); random
        # orthogonal ones store FP16.
        n = self.in_features
        rot = 0 if n & (n - 1) == 0 else 2 * n * n
        return self.qweight.memory_bytes() + rot


def quarot_linear(
    weight: np.ndarray,
    group_size: int = 128,
    bias: np.ndarray | None = None,
    seed: int = 0,
    name: str = "",
) -> RotatedW4A4Linear:
    """Build the rotation-based W4A4 replacement for one linear layer."""
    return RotatedW4A4Linear(
        weight, group_size=group_size, bias=bias, seed=seed, name=name
    )
