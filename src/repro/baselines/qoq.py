"""QoQ: the W4A8KV4 quantization algorithm of QServe (Lin et al., 2024).

QoQ quantizes weights to INT4 with group-wise scales (group 128, one FP16
scale per group — the configuration the paper benchmarks), activations to
per-token INT8, and the KV cache to INT4.  Unlike FMPQ it has no
mixed-precision path: *all* activation GEMMs run at INT8, so it leaves the
INT4 tensor cores idle.
"""

from __future__ import annotations

import numpy as np

from repro.core.intquant import INT4, INT8
from repro.core.kvquant import KVQuantConfig
from repro.core.weightquant import quantize_weight
from repro.baselines.wrappers import DynamicActLinear

__all__ = ["qoq_linear", "qoq_kv_config"]


def qoq_linear(
    weight: np.ndarray,
    group_size: int = 128,
    bias: np.ndarray | None = None,
    name: str = "",
) -> DynamicActLinear:
    """Build the QoQ W4A8 replacement for one linear layer."""
    qweight = quantize_weight(
        weight, group_size=group_size, clip_grid=(1.0, 0.95, 0.9), spec=INT4
    )
    return DynamicActLinear(qweight, act_spec=INT8, bias=bias, name=name)


def qoq_kv_config() -> KVQuantConfig:
    """QServe's KV4 configuration."""
    return KVQuantConfig(granularity="per_token")
