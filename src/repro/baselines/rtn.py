"""RTN: plain round-to-nearest weight quantization — the naive baseline."""

from __future__ import annotations

import numpy as np

from repro.core.intquant import INT4, QuantSpec
from repro.core.weightquant import QuantizedWeight, quantize_weight
from repro.baselines.wrappers import WeightOnlyLinear

__all__ = ["rtn_quantize_weight", "rtn_w4a16_linear"]


def rtn_quantize_weight(
    weight: np.ndarray, group_size: int = 128, spec: QuantSpec = INT4
) -> QuantizedWeight:
    """Group-wise round-to-nearest without clipping or calibration."""
    return quantize_weight(weight, group_size=group_size, clip_grid=(1.0,), spec=spec)


def rtn_w4a16_linear(
    weight: np.ndarray,
    group_size: int = 128,
    bias: np.ndarray | None = None,
    name: str = "",
) -> WeightOnlyLinear:
    """W4A16 deployment of plain RTN."""
    return WeightOnlyLinear(rtn_quantize_weight(weight, group_size), bias=bias, name=name)
