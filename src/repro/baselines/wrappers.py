"""Quantized linear-layer wrappers used by the baseline algorithms.

Each wrapper is a drop-in for :class:`repro.model.layers.Linear` and models a
distinct serving regime:

* :class:`WeightOnlyLinear` — W4A16: INT4 weights dequantized to float before
  the GEMM (GPTQ / AWQ / OmniQuant deployments).
* :class:`DynamicActLinear` — WxAy: group-quantized integer weights with
  per-token symmetric activation quantization at an arbitrary bit width
  (W8A8 without smoothing, QoQ-style W4A8, naive W4A4).
* :class:`SmoothQuantLinear` — W8A8 with the SmoothQuant equivalent
  transformation folded into the activation path and weights.
"""

from __future__ import annotations

import numpy as np

from repro.core.intquant import (
    QuantSpec,
    quantize_symmetric,
    symmetric_scale,
)
from repro.core.weightquant import QuantizedWeight

__all__ = ["WeightOnlyLinear", "DynamicActLinear", "SmoothQuantLinear"]


class WeightOnlyLinear:
    """W4A16: float activations, quantized weights dequantized on load."""

    def __init__(
        self,
        qweight: QuantizedWeight,
        bias: np.ndarray | None = None,
        name: str = "",
    ):
        self.qweight = qweight
        self.bias = bias
        self.name = name
        self._w = qweight.dequantize()

    @property
    def in_features(self) -> int:
        return self.qweight.in_features

    @property
    def out_features(self) -> int:
        return self.qweight.out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float32) @ self._w.T
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def memory_bytes(self) -> int:
        return self.qweight.memory_bytes()


class DynamicActLinear:
    """Integer GEMM with per-token dynamic activation quantization.

    Activations are quantized symmetrically per token at ``act_spec``;
    weights are group-quantized integers.  The GEMM runs in integer
    arithmetic per weight group, mirroring a WxAy tensor-core kernel.
    """

    def __init__(
        self,
        qweight: QuantizedWeight,
        act_spec: QuantSpec,
        bias: np.ndarray | None = None,
        name: str = "",
    ):
        self.qweight = qweight
        self.act_spec = act_spec
        self.bias = bias
        self.name = name

    @property
    def in_features(self) -> int:
        return self.qweight.in_features

    @property
    def out_features(self) -> int:
        return self.qweight.out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        lead = x.shape[:-1]
        flat = x.reshape(-1, self.in_features)
        a_scale = symmetric_scale(flat, self.act_spec, axis=-1)
        a_codes = quantize_symmetric(flat, a_scale, self.act_spec).astype(np.int64)
        g = self.qweight.group_size
        out = np.zeros((flat.shape[0], self.out_features), dtype=np.float32)
        for gi in range(self.qweight.num_groups):
            acc = a_codes[:, gi * g : (gi + 1) * g] @ (
                self.qweight.group_codes(gi).astype(np.int64).T
            )
            out += (
                acc.astype(np.float32)
                * a_scale
                * self.qweight.group_scales(gi)[None, :]
            )
        out = out.reshape(*lead, self.out_features)
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def memory_bytes(self) -> int:
        return self.qweight.memory_bytes()


class SmoothQuantLinear(DynamicActLinear):
    """W8A8 with a per-channel smoothing divisor on the activation path.

    The smoothing factors migrate quantization difficulty from activations
    to weights (already folded into ``qweight`` by the caller).
    """

    def __init__(
        self,
        qweight: QuantizedWeight,
        act_spec: QuantSpec,
        smooth: np.ndarray,
        bias: np.ndarray | None = None,
        name: str = "",
    ):
        super().__init__(qweight, act_spec, bias=bias, name=name)
        self.smooth = np.asarray(smooth, dtype=np.float32)
        if self.smooth.shape != (self.in_features,):
            raise ValueError("smooth must have shape (in_features,)")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return super().forward(np.asarray(x, dtype=np.float32) / self.smooth)

    __call__ = forward
