"""GPTQ: Hessian-guided weight quantization (Frantar et al., 2022).

A faithful from-scratch implementation of the GPTQ inner loop: weights are
quantized column by column in blocks, and after each column the remaining
(unquantized) columns are updated to compensate the introduced error using
the inverse Hessian ``H = 2 X^T X`` of the layer's reconstruction objective.
The Cholesky-based formulation from the paper is used.
"""

from __future__ import annotations

import numpy as np

from repro.core.intquant import INT4, QuantSpec
from repro.core.weightquant import QuantizedWeight

__all__ = ["gptq_quantize_weight"]


def _per_group_scales(
    weight: np.ndarray, group_size: int, spec: QuantSpec
) -> np.ndarray:
    out_f, in_f = weight.shape
    grouped = np.abs(weight).reshape(out_f, in_f // group_size, group_size)
    return np.maximum(grouped.max(axis=-1), 1e-12).astype(np.float32) / spec.qmax


def gptq_quantize_weight(
    weight: np.ndarray,
    calib_x: np.ndarray,
    group_size: int = 128,
    spec: QuantSpec = INT4,
    percdamp: float = 0.01,
    block_size: int = 32,
) -> QuantizedWeight:
    """Quantize a ``(out, in)`` weight with GPTQ error compensation.

    Args:
        weight: float weight matrix.
        calib_x: calibration inputs ``(samples, in)`` for the Hessian.
        group_size: input channels per quantization scale.
        spec: target integer format.
        percdamp: Hessian dampening fraction (paper default 1%).
        block_size: lazy-batch update block width.

    Returns:
        :class:`QuantizedWeight` whose codes minimize layer output error.
    """
    w = np.asarray(weight, dtype=np.float64).copy()
    out_f, in_f = w.shape
    if in_f % group_size != 0:
        raise ValueError("in_features must be divisible by group_size")
    x = np.asarray(calib_x, dtype=np.float64).reshape(-1, in_f)
    if x.shape[0] < 1:
        raise ValueError("calibration set is empty")

    h = 2.0 * (x.T @ x) / x.shape[0]
    # Dead channels (never activated) get unit curvature and zero weight.
    dead = np.diag(h) == 0
    h[dead, dead] = 1.0
    w[:, dead] = 0.0
    damp = percdamp * float(np.mean(np.diag(h)))
    h[np.arange(in_f), np.arange(in_f)] += damp

    # Inverse Hessian via Cholesky of H^-1 (upper), as in the reference code.
    hinv = np.linalg.inv(h)
    hinv_chol = np.linalg.cholesky(hinv).T  # upper triangular

    scales = _per_group_scales(w, group_size, spec)  # (out, groups)
    codes = np.zeros((out_f, in_f), dtype=np.int8)

    for b0 in range(0, in_f, block_size):
        b1 = min(b0 + block_size, in_f)
        w_block = w[:, b0:b1].copy()
        err_block = np.zeros_like(w_block)
        for j in range(b0, b1):
            jj = j - b0
            d = hinv_chol[j, j]
            s = scales[:, j // group_size]
            q = np.clip(np.round(w_block[:, jj] / s), spec.qmin, spec.qmax)
            codes[:, j] = q.astype(np.int8)
            dq = q * s
            err = (w_block[:, jj] - dq) / d
            # Compensate remaining columns inside the block.
            if j + 1 < b1:
                w_block[:, jj + 1 :] -= np.outer(err, hinv_chol[j, j + 1 : b1])
            err_block[:, jj] = err
        # Lazy batched update of all columns right of the block.
        if b1 < in_f:
            w[:, b1:] -= err_block @ hinv_chol[b0:b1, b1:]

    return QuantizedWeight(
        codes=codes,
        scales=scales.astype(np.float32),
        group_size=group_size,
        spec=spec,
    )
