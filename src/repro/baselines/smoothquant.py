"""SmoothQuant: W8A8 via activation-to-weight difficulty migration
(Xiao et al., 2023).

The per-channel smoothing factor ``s_j = absmax(X_j)^alpha /
absmax(W_j)^(1-alpha)`` divides the activations and multiplies the matching
weight columns, which is function-preserving while flattening activation
outliers enough for INT8 per-token quantization.
"""

from __future__ import annotations

import numpy as np

from repro.core.intquant import INT8
from repro.core.weightquant import quantize_weight
from repro.baselines.wrappers import SmoothQuantLinear

__all__ = ["smoothquant_linear", "compute_smoothing_factor"]


def compute_smoothing_factor(
    weight: np.ndarray, calib_x: np.ndarray, alpha: float = 0.5
) -> np.ndarray:
    """The SmoothQuant migration factor (paper Eq. 4)."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    w = np.asarray(weight, dtype=np.float32)
    x = np.asarray(calib_x, dtype=np.float32).reshape(-1, w.shape[1])
    act_mag = np.maximum(np.abs(x).max(axis=0), 1e-8)
    w_mag = np.maximum(np.abs(w).max(axis=0), 1e-8)
    s = act_mag**alpha / w_mag ** (1.0 - alpha)
    return np.maximum(s, 1e-5).astype(np.float32)


def smoothquant_linear(
    weight: np.ndarray,
    calib_x: np.ndarray,
    alpha: float = 0.5,
    group_size: int = 128,
    bias: np.ndarray | None = None,
    name: str = "",
) -> SmoothQuantLinear:
    """Build a W8A8 SmoothQuant replacement for a linear layer."""
    w = np.asarray(weight, dtype=np.float32)
    smooth = compute_smoothing_factor(w, calib_x, alpha)
    w_smoothed = w * smooth[None, :]
    qweight = quantize_weight(
        w_smoothed, group_size=group_size, clip_grid=(1.0,), spec=INT8
    )
    return SmoothQuantLinear(
        qweight=qweight, act_spec=INT8, smooth=smooth, bias=bias, name=name
    )
