"""Uniform interface for applying any quantization method to a model.

All methods compared in the paper's Tables 1-2 are registered here under the
names used in the result tables.  ``apply_quantization`` swaps every
quantizable linear for the method's wrapper and returns a report including
the KV cache configuration the method is evaluated with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines.awq import awq_quantize_weight
from repro.baselines.gptq import gptq_quantize_weight
from repro.baselines.omniquant import (
    omniquant_w4a16_linear,
    omniquant_w4a4_linear,
)
from repro.baselines.qoq import qoq_kv_config, qoq_linear
from repro.baselines.quarot import quarot_linear
from repro.baselines.rtn import rtn_w4a16_linear
from repro.baselines.smoothquant import smoothquant_linear
from repro.baselines.wrappers import WeightOnlyLinear
from repro.core.blockwise import BlockConfig
from repro.core.fmpq import FMPQConfig, LayerQuantStats, calibrate_linear
from repro.core.kvquant import KVQuantConfig
from repro.data.corpus import SyntheticCorpus
from repro.model.transformer import Transformer

__all__ = [
    "METHODS",
    "QuantReport",
    "collect_calibration",
    "apply_quantization",
]


@dataclass
class QuantReport:
    """Outcome of quantizing a model with one method."""

    method: str
    kv_config: KVQuantConfig | None
    layer_stats: dict[str, LayerQuantStats] = field(default_factory=dict)

    @property
    def mean_w4a4_fraction(self) -> float:
        """Mean fraction of GEMM volume runnable as W4A4 (FMPQ only)."""
        if not self.layer_stats:
            return 0.0
        return float(
            np.mean([s.w4a4_gemm_fraction for s in self.layer_stats.values()])
        )


def collect_calibration(
    model: Transformer,
    corpus: SyntheticCorpus,
    num_sequences: int = 8,
    seq_len: int = 64,
    seed: int = 12345,
) -> dict[str, np.ndarray]:
    """Sample calibration activations for every quantizable linear.

    Mirrors the paper's use of a small sampled calibration set: a handful of
    corpus sequences are run through the FP model and each linear's inputs
    are recorded.
    """
    with model.capture_linear_inputs() as store:
        for i in range(num_sequences):
            model.forward(corpus.sample_sequence(seq_len, seed=seed + i))
    return {name: np.concatenate(chunks) for name, chunks in store.items()}


def _apply_per_layer(model: Transformer, build: Callable) -> None:
    for name, linear in model.named_linears().items():
        model.replace_linear(name, build(name, linear))


def _quantize_fmpq(
    model: Transformer,
    calib: dict[str, np.ndarray],
    group_size: int,
    kv: bool,
    **fmpq_kw,
) -> QuantReport:
    config = FMPQConfig(block=BlockConfig(block_size=group_size), **fmpq_kw)
    stats: dict[str, LayerQuantStats] = {}

    def build(name, linear):
        qlin, layer_stats = calibrate_linear(
            linear.weight, calib[name], config, bias=linear.bias, name=name
        )
        stats[name] = layer_stats
        return qlin

    _apply_per_layer(model, build)
    return QuantReport(
        method="fmpq-w4axkv4" if kv else "fmpq-w4ax",
        kv_config=KVQuantConfig() if kv else None,
        layer_stats=stats,
    )


def _method_fp16(model, calib, group_size):
    return QuantReport(method="fp16", kv_config=None)


def _method_smoothquant(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: smoothquant_linear(
            lin.weight, calib[name], group_size=group_size, bias=lin.bias, name=name
        ),
    )
    return QuantReport(method="smoothquant-w8a8", kv_config=None)


def _method_gptq(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: WeightOnlyLinear(
            gptq_quantize_weight(lin.weight, calib[name], group_size=group_size),
            bias=lin.bias,
            name=name,
        ),
    )
    return QuantReport(method="gptq-w4a16", kv_config=None)


def _method_awq(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: WeightOnlyLinear(
            awq_quantize_weight(lin.weight, calib[name], group_size=group_size),
            bias=lin.bias,
            name=name,
        ),
    )
    return QuantReport(method="awq-w4a16", kv_config=None)


def _method_omniquant_w4a16(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: omniquant_w4a16_linear(
            lin.weight, group_size=group_size, bias=lin.bias, name=name
        ),
    )
    return QuantReport(method="omniquant-w4a16", kv_config=None)


def _method_rtn(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: rtn_w4a16_linear(
            lin.weight, group_size=group_size, bias=lin.bias, name=name
        ),
    )
    return QuantReport(method="rtn-w4a16", kv_config=None)


def _method_omniquant_w4a4(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: omniquant_w4a4_linear(
            lin.weight, group_size=group_size, bias=lin.bias, name=name
        ),
    )
    return QuantReport(method="omniquant-w4a4", kv_config=None)


def _method_qoq(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: qoq_linear(
            lin.weight, group_size=group_size, bias=lin.bias, name=name
        ),
    )
    return QuantReport(method="qoq-w4a8kv4", kv_config=qoq_kv_config())


def _method_quarot(model, calib, group_size):
    _apply_per_layer(
        model,
        lambda name, lin: quarot_linear(
            lin.weight, group_size=group_size, bias=lin.bias, name=name
        ),
    )
    return QuantReport(method="quarot-w4a4", kv_config=None)


def _method_fmpq_w4ax(model, calib, group_size):
    return _quantize_fmpq(model, calib, group_size, kv=False)


def _method_fmpq_w4axkv4(model, calib, group_size):
    return _quantize_fmpq(model, calib, group_size, kv=True)


#: method name -> implementation.  Names follow the paper's result tables.
METHODS: dict[str, Callable] = {
    "fp16": _method_fp16,
    "smoothquant-w8a8": _method_smoothquant,
    "gptq-w4a16": _method_gptq,
    "awq-w4a16": _method_awq,
    "omniquant-w4a16": _method_omniquant_w4a16,
    "rtn-w4a16": _method_rtn,
    "omniquant-w4a4": _method_omniquant_w4a4,
    "quarot-w4a4": _method_quarot,
    "qoq-w4a8kv4": _method_qoq,
    "fmpq-w4ax": _method_fmpq_w4ax,
    "fmpq-w4axkv4": _method_fmpq_w4axkv4,
}


def apply_quantization(
    model: Transformer,
    method: str,
    calib: dict[str, np.ndarray],
    group_size: int = 16,
) -> QuantReport:
    """Quantize ``model`` in place with a registered method.

    Args:
        model: an unquantized model (mutated in place).
        method: a key of :data:`METHODS`.
        calib: calibration activations from :func:`collect_calibration`.
        group_size: weight group / activation block size.  The paper uses
            128; the tiny evaluation models use 16 so each layer still spans
            several blocks.

    Returns:
        :class:`QuantReport` with the KV config to evaluate under.
    """
    try:
        impl = METHODS[method]
    except KeyError:
        known = ", ".join(sorted(METHODS))
        raise KeyError(f"unknown method {method!r}; known: {known}") from None
    return impl(model, calib, group_size)
