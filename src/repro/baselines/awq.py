"""AWQ: activation-aware weight quantization (Lin et al., 2023).

AWQ protects the weight channels that matter most — the ones multiplied by
large activations — by scaling them up before round-to-nearest quantization
and folding the inverse scale into the activation path.  Because the scale
is absorbed exactly, the transform is function-preserving; only quantization
error changes.  The per-layer exponent ``alpha`` in
``s_j = absmax(X_j) ** alpha`` is grid-searched to minimize the layer's
output reconstruction error on the calibration set, as in the reference
implementation.

For W4A16 deployment the folded activation scaling is merged back into the
dequantized weight (scales divide out), so the final artifact is simply a
better-rounded :class:`QuantizedWeight`.
"""

from __future__ import annotations

import numpy as np

from repro.core.intquant import INT4, QuantSpec
from repro.core.weightquant import QuantizedWeight, quantize_weight

__all__ = ["awq_quantize_weight", "awq_search_scale"]

_ALPHA_GRID = (0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9)


def awq_search_scale(
    weight: np.ndarray,
    calib_x: np.ndarray,
    group_size: int,
    spec: QuantSpec = INT4,
    alpha_grid: tuple[float, ...] = _ALPHA_GRID,
) -> tuple[np.ndarray, float]:
    """Grid-search the AWQ channel scale minimizing output MSE.

    Returns:
        ``(scale, best_alpha)`` where ``scale`` has shape ``(in_features,)``.
    """
    w = np.asarray(weight, dtype=np.float32)
    x = np.asarray(calib_x, dtype=np.float32).reshape(-1, w.shape[1])
    if x.shape[0] == 0:
        raise ValueError("calibration set is empty")
    # Subsample for the search to keep it cheap.
    if x.shape[0] > 256:
        x = x[:: x.shape[0] // 256][:256]
    act_mag = np.maximum(np.abs(x).max(axis=0), 1e-8)
    ref = x @ w.T
    best = (np.ones(w.shape[1], dtype=np.float32), 0.0)
    best_err = np.inf
    for alpha in alpha_grid:
        s = act_mag**alpha
        s = (s / np.sqrt(s.max() * s.min())).astype(np.float32)  # normalize
        qw = quantize_weight(w * s[None, :], group_size, clip_grid=(1.0,), spec=spec)
        recon = (x / s[None, :]) @ qw.dequantize().T
        err = float(np.mean((recon - ref) ** 2))
        if err < best_err:
            best_err = err
            best = (s, alpha)
    return best


def awq_quantize_weight(
    weight: np.ndarray,
    calib_x: np.ndarray,
    group_size: int = 128,
    spec: QuantSpec = INT4,
) -> QuantizedWeight:
    """AWQ-quantize a weight for W4A16 deployment.

    The searched channel scale is applied before rounding and divided back
    out of the stored scales, so ``dequantize()`` approximates the original
    weight directly and float activations need no modification.
    """
    w = np.asarray(weight, dtype=np.float32)
    s, _ = awq_search_scale(w, calib_x, group_size, spec)
    qw = quantize_weight(w * s[None, :], group_size, clip_grid=(1.0,), spec=spec)
    # Fold the channel scale back: dequant(codes) / s == original approx.
    # Scales are per (out, group) while s is per input channel, so fold s
    # into the codes' effective value by rescaling dequantized groups.
    # Instead of approximate folding, re-derive exact per-group scales is
    # impossible (s varies within a group); keep codes and store the
    # channel divisor alongside by dividing the *weight* columns we feed
    # downstream.  We achieve exactness by quantizing w*s and returning a
    # QuantizedWeight whose dequantize() is (w*s)_q / s.
    return _ChannelFoldedWeight(
        codes=qw.codes,
        scales=qw.scales,
        group_size=qw.group_size,
        spec=qw.spec,
        channel_divisor=s,
    )


class _ChannelFoldedWeight(QuantizedWeight):
    """A QuantizedWeight whose dequantization divides out an AWQ scale."""

    def __init__(self, codes, scales, group_size, spec, channel_divisor):
        super().__init__(codes=codes, scales=scales, group_size=group_size, spec=spec)
        self.channel_divisor = np.asarray(channel_divisor, dtype=np.float32)

    def dequantize(self) -> np.ndarray:
        return super().dequantize() / self.channel_divisor[None, :]

    def memory_bytes(self) -> int:
        return super().memory_bytes() + 2 * self.channel_divisor.size
