"""Quantization algorithm baselines compared against FMPQ in the paper."""

from repro.baselines.awq import awq_quantize_weight, awq_search_scale
from repro.baselines.gptq import gptq_quantize_weight
from repro.baselines.omniquant import (
    OMNIQUANT_CLIP_GRID,
    omniquant_quantize_weight,
    omniquant_w4a16_linear,
    omniquant_w4a4_linear,
)
from repro.baselines.qoq import qoq_kv_config, qoq_linear
from repro.baselines.quarot import (
    RotatedW4A4Linear,
    hadamard_matrix,
    quarot_linear,
    random_orthogonal,
)
from repro.baselines.registry import (
    METHODS,
    QuantReport,
    apply_quantization,
    collect_calibration,
)
from repro.baselines.rtn import rtn_quantize_weight, rtn_w4a16_linear
from repro.baselines.smoothquant import (
    compute_smoothing_factor,
    smoothquant_linear,
)
from repro.baselines.wrappers import (
    DynamicActLinear,
    SmoothQuantLinear,
    WeightOnlyLinear,
)

__all__ = [
    "DynamicActLinear",
    "METHODS",
    "OMNIQUANT_CLIP_GRID",
    "QuantReport",
    "SmoothQuantLinear",
    "WeightOnlyLinear",
    "apply_quantization",
    "awq_quantize_weight",
    "awq_search_scale",
    "collect_calibration",
    "compute_smoothing_factor",
    "gptq_quantize_weight",
    "omniquant_quantize_weight",
    "omniquant_w4a16_linear",
    "omniquant_w4a4_linear",
    "RotatedW4A4Linear",
    "hadamard_matrix",
    "qoq_kv_config",
    "qoq_linear",
    "quarot_linear",
    "random_orthogonal",
    "rtn_quantize_weight",
    "rtn_w4a16_linear",
    "smoothquant_linear",
]
