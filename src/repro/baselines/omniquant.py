"""OmniQuant-style learned weight clipping (Shao et al., 2023).

OmniQuant learns per-channel clipping thresholds by block-wise gradient
descent; the standard PTQ approximation (used here, and by several
re-implementations) is a dense grid search over clip ratios minimizing
reconstruction MSE.  Two deployments are provided:

* W4A16 — the paper's headline lossless configuration;
* W4A4 — the aggressive full-INT4-activation extension whose accuracy
  collapse motivates FMPQ (paper Table 1, "W4A4 Omniquant" row).
"""

from __future__ import annotations

import numpy as np

from repro.core.intquant import INT4
from repro.core.weightquant import QuantizedWeight, quantize_weight
from repro.baselines.wrappers import DynamicActLinear, WeightOnlyLinear

__all__ = [
    "OMNIQUANT_CLIP_GRID",
    "omniquant_quantize_weight",
    "omniquant_w4a16_linear",
    "omniquant_w4a4_linear",
]

#: Finer grid than the default — stands in for gradient-learned clipping.
OMNIQUANT_CLIP_GRID: tuple[float, ...] = tuple(
    round(1.0 - 0.025 * i, 4) for i in range(13)
)


def omniquant_quantize_weight(
    weight: np.ndarray, group_size: int = 128
) -> QuantizedWeight:
    """INT4 weight quantization with the dense clip grid."""
    return quantize_weight(
        weight, group_size=group_size, clip_grid=OMNIQUANT_CLIP_GRID, spec=INT4
    )


def omniquant_w4a16_linear(
    weight: np.ndarray,
    group_size: int = 128,
    bias: np.ndarray | None = None,
    name: str = "",
) -> WeightOnlyLinear:
    """W4A16 deployment: float activations, clipped INT4 weights."""
    return WeightOnlyLinear(
        omniquant_quantize_weight(weight, group_size), bias=bias, name=name
    )


def omniquant_w4a4_linear(
    weight: np.ndarray,
    group_size: int = 128,
    bias: np.ndarray | None = None,
    name: str = "",
) -> DynamicActLinear:
    """Aggressive full W4A4: INT4 weights and naive per-token INT4
    activations.  Expected to degrade accuracy severely on outlier-bearing
    activations — the negative result FMPQ fixes."""
    return DynamicActLinear(
        omniquant_quantize_weight(weight, group_size),
        act_spec=INT4,
        bias=bias,
        name=name,
    )
