"""Extension: tensor-parallel scaling of COMET serving.

Sweeps TP degree for a small (8B) and a large (70B) model, reporting
throughput and per-GPU weight memory.  Expected shape: the memory-bound
70B decode scales well (each GPU streams 1/degree of the weights) and
FP16-70B becomes feasible at TP>=2 with INT4 weights' capacity headroom;
the 8B model is launch-overhead-bound and barely scales — the standard
reason small models serve at TP=1.
"""

from __future__ import annotations

import pytest

from bench_util import emit, format_table
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import make_batch_requests
from repro.serving.systems import build_system

DEGREES = (1, 2, 4, 8)


def run_tp_sweep():
    rows = []
    for model_name, system in (("llama-3-8b", "comet"), ("llama-3-70b", "comet"),
                               ("llama-3-70b", "trtllm-fp16")):
        cfg = get_model_config(model_name)
        for degree in DEGREES:
            try:
                engine = ServingEngine(
                    cfg,
                    build_system(system),
                    config=EngineConfig(max_batch=32, tensor_parallel=degree),
                )
            except ValueError:
                rows.append({"model": model_name, "system": system,
                             "tp": degree, "tput": None, "weights_gb": None})
                continue
            rep = engine.run(make_batch_requests(32, 256, 64))
            rows.append(
                {
                    "model": model_name,
                    "system": system,
                    "tp": degree,
                    "tput": rep.throughput,
                    "weights_gb": engine.plan.weight_bytes / 1e9 / degree,
                }
            )
    return rows


@pytest.mark.benchmark(group="ext-tp")
def test_ext_tensor_parallel(benchmark):
    rows = benchmark.pedantic(run_tp_sweep, rounds=1, iterations=1)
    emit(
        "ext_tensor_parallel",
        format_table(
            "Extension — tensor-parallel scaling (256/64, batch 32)",
            ["model", "system", "TP", "tput tok/s", "weights/GPU (GB)"],
            [
                [r["model"], r["system"], r["tp"],
                 r["tput"] if r["tput"] is not None else "OOM",
                 r["weights_gb"] if r["weights_gb"] is not None else "-"]
                for r in rows
            ],
            notes=[
                "70B scales (memory-bound); 8B barely does (launch-bound); "
                "FP16-70B needs TP>=4 (141 GB of weights + KV headroom).",
            ],
        ),
    )
    by = {(r["model"], r["system"], r["tp"]): r["tput"] for r in rows}
    # FP16-70B infeasible at TP=1, feasible at TP>=2.
    assert by[("llama-3-70b", "trtllm-fp16", 1)] is None
    assert by[("llama-3-70b", "trtllm-fp16", 4)] is not None
    # COMET-70B scales clearly; 8B modestly.
    big = by[("llama-3-70b", "comet", 4)] / by[("llama-3-70b", "comet", 1)]
    small = by[("llama-3-8b", "comet", 4)] / by[("llama-3-8b", "comet", 1)]
    assert big > 1.6
    assert small < big
    # Monotone in degree for the 70B model.
    seventy = [by[("llama-3-70b", "comet", d)] for d in DEGREES]
    assert all(a <= b * 1.02 for a, b in zip(seventy, seventy[1:]))