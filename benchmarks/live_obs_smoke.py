"""CI live-observability smoke: serve an overload trace with the live
layer attached and the HTTP exporter up, then verify the contract end to
end (the ``live-obs-smoke`` CI step, see docs/observability.md):

* ``/metrics``, ``/healthz``, ``/slo``, ``/requests`` answer over real
  HTTP (stdlib ``urllib`` against an ephemeral port) — including one
  probe fired *mid-run* from the heartbeat hook, proving the endpoints
  are live while the engine is still stepping;
* every metric family exported on ``/metrics`` appears in the canonical
  catalog (``repro.obs.catalog.METRIC_CATALOG``) — the OBS staticcheck
  contract, re-checked here against the real wire format;
* the SLO monitor reports a non-ok state during the injected overload;
* the flight recorder holds a full timeline for at least one failed
  request, and ``/requests/<id>`` serves it.

Exits nonzero on any violation.  Run::

    PYTHONPATH=src python benchmarks/live_obs_smoke.py
"""

from __future__ import annotations

import json
import sys
import urllib.request

import repro.obs as obs
from repro.obs import live as live_obs
from repro.obs.catalog import METRIC_CATALOG
from repro.obs.live.httpd import LiveHTTPServer
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.faults import FaultPlan
from repro.serving.systems import build_system
from repro.serving.workload import make_overload_trace


def _get(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read()


def _metric_families(prom_text: str) -> set[str]:
    """Family names declared on the wire (``# TYPE <name> <kind>``)."""
    names = set()
    for line in prom_text.splitlines():
        if line.startswith("# TYPE "):
            names.add(line.split()[2])
    return names


def main() -> int:
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(("ok  " if ok else "FAIL") + f"  {what}")
        if not ok:
            failures.append(what)

    obs.enable()
    engine = ServingEngine(
        get_model_config("llama-3-8b"),
        build_system("comet"),
        config=EngineConfig(
            max_batch=32, hbm_bytes=20e9, prefill_chunk_tokens=256
        ),
    )
    requests = make_overload_trace(
        60, engine.kv.token_capacity, overload=2.0,
        ttft_slo=1.0, seed=0,
    )

    midrun: dict = {}

    def probe_midrun(bundle: live_obs.LiveObs) -> None:
        if midrun or bundle.steps < 50:
            return  # one probe, once the run is warm
        status, body = _get(f"{server.url}/healthz")
        midrun["status"] = status
        midrun["body"] = json.loads(body)

    live = live_obs.attach(
        window_seconds=1.0, heartbeat_hook=probe_midrun, hook_every=25
    )
    server = LiveHTTPServer(live=live, port=0)
    url = server.start()
    print(f"live endpoints at {url}")

    plan = FaultPlan(
        seed=0, step_fault_rate=0.1, kv_loss_rate=0.02,
        straggler_rate=0.05, request_abort_rate=0.1,
    )
    try:
        report = engine.run(requests, faults=plan)

        check(midrun.get("status") == 200, "/healthz answered mid-run")
        check(
            midrun.get("body", {}).get("live_attached") is True,
            "mid-run /healthz sees the attached bundle",
        )

        status, body = _get(f"{url}/metrics")
        check(status == 200, "/metrics answers 200")
        exported = _metric_families(body.decode())
        check(bool(exported), "/metrics exports at least one family")
        uncatalogued = sorted(exported - set(METRIC_CATALOG))
        check(
            not uncatalogued,
            f"every exported metric is catalogued (extra: {uncatalogued})",
        )
        for must in ("serving.live_heartbeats_total", "serving.slo_state"):
            check(must in exported, f"{must} exported on /metrics")

        status, body = _get(f"{url}/healthz")
        health = json.loads(body)
        check(status == 200, "/healthz answers 200")
        check(health["heartbeat_steps"] > 0, "heartbeats were recorded")

        status, body = _get(f"{url}/slo")
        slo = json.loads(body)
        check(status == 200, "/slo answers 200")
        check(
            slo["worst_state"] in ("warn", "critical"),
            f"SLO went non-ok under overload (worst {slo['worst_state']!r})",
        )

        status, body = _get(f"{url}/requests")
        idx = json.loads(body)
        check(status == 200, "/requests answers 200")
        check(bool(idx["failures"]), "flight recorder retained failures")
        if idx["failures"]:
            rid = idx["failures"][0]
            status, body = _get(f"{url}/requests/{rid}")
            rec = json.loads(body)
            check(status == 200, f"/requests/{rid} answers 200")
            check(
                len(rec["timeline"]) >= 2,
                f"failed request {rid} has a full timeline "
                f"({len(rec['timeline'])} events)",
            )
            check(
                rec["outcome"] in ("failed", "rejected", "timed_out"),
                f"request {rid} ended in a failure outcome ({rec['outcome']})",
            )

        status, _ = _get(f"{url}/windows")
        check(status == 200, "/windows answers 200")

        # Under this overload + tight TTFT SLO most requests time out (that
        # is what drives the SLO monitor non-ok); progress = tokens landed.
        check(report.output_tokens > 0, "the overload run still made progress")
    finally:
        server.stop()
        live_obs.detach()
        obs.disable()

    if failures:
        print(f"\nlive-obs smoke FAILED ({len(failures)} checks)",
              file=sys.stderr)
        return 1
    print("\nlive-obs smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
