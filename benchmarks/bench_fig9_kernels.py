"""Figure 9: kernel latency across GEMM shapes and batch sizes.

Paper claims being reproduced (cuBLAS-W16A16 normalized to 1.0x):

* small batches (2/4/8): every quantized kernel wins modestly and
  **W4A16 beats W8A8** (loading bound);
* large batches (16/64/256): **W8A8 overtakes W4A16** (compute bound) and
  COMET-W4Ax wins everywhere — the paper reports averages of 1.48x (small)
  and 2.88x (large) over cuBLAS;
* COMET's fixed 128^3 tiling makes some shapes (e.g. n<<k) less favourable
  than others, as Section 6.3's "Analysis on Varying Kernels" notes.

The kernel mix is fixed at 75% W4A4 (the paper's lower-bound setting).
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table, maybe_emit_metrics
from repro.kernels.baselines import CuBLASW16A16, TRTLLMW4A16, TRTLLMW8A8
from repro.kernels.tiling import GEMMShape
from repro.kernels.w4ax import W4AxKernel
from repro.model.config import get_model_config

SMALL_BATCHES = (2, 4, 8)
LARGE_BATCHES = (16, 64, 256)


def gemm_shapes():
    """The paper's kernel workloads: the distinct linear shapes of
    LLaMA-2-13B and LLaMA-1-65B (5Kx5K, 13.5Kx5K, 5Kx13.5K, 8Kx8K, ...)."""
    shapes = []
    for model in ("llama-2-13b", "llama-1-65b"):
        cfg = get_model_config(model)
        for key in ("wq", "w_gate", "w_down"):
            n, k = cfg.linear_shapes()[key]
            shapes.append((f"{n // 1000}Kx{k // 1000}K", n, k))
    # Dedup by label, keep order.
    seen = set()
    out = []
    for label, n, k in shapes:
        if label not in seen:
            seen.add(label)
            out.append((label, n, k))
    return out


def run_fig9():
    maybe_emit_metrics()
    kernels = {
        "cuBLAS-W16A16": CuBLASW16A16(),
        "TRT-LLM-W4A16": TRTLLMW4A16(),
        "TRT-LLM-W8A8": TRTLLMW8A8(),
        "COMET-W4Ax": W4AxKernel(),
    }
    rows = []
    for m in SMALL_BATCHES + LARGE_BATCHES:
        for label, n, k in gemm_shapes():
            shape = GEMMShape(m, n, k)
            lat = {name: kern.latency(shape).seconds for name, kern in kernels.items()}
            base = lat["cuBLAS-W16A16"]
            rows.append(
                {
                    "batch": m,
                    "shape": label,
                    **{name: base / v for name, v in lat.items()},
                }
            )
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_kernel_speedups(benchmark):
    rows = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    names = ["cuBLAS-W16A16", "TRT-LLM-W4A16", "TRT-LLM-W8A8", "COMET-W4Ax"]
    table_rows = [
        [r["batch"], r["shape"]] + [r[n] for n in names] for r in rows
    ]
    small = [r for r in rows if r["batch"] in SMALL_BATCHES]
    large = [r for r in rows if r["batch"] in LARGE_BATCHES]

    def avg(rows_, name):
        return float(np.mean([r[name] for r in rows_]))

    summary = [
        ["small avg", ""] + [avg(small, n) for n in names],
        ["large avg", ""] + [avg(large, n) for n in names],
    ]
    emit(
        "fig9_kernels",
        format_table(
            "Figure 9 — kernel speedup over cuBLAS-W16A16 (75% W4A4 mix)",
            ["batch", "shape"] + names,
            table_rows + summary,
            notes=[
                "Paper averages: small 1.48x / large 2.88x (COMET);",
                "ordering small: COMET > W4A16 > W8A8; large: COMET > W8A8 > W4A16.",
            ],
        ),
    )
    # Shape assertions: orderings and the W4A16/W8A8 crossover.
    assert avg(small, "COMET-W4Ax") > avg(small, "TRT-LLM-W4A16")
    assert avg(small, "TRT-LLM-W4A16") > avg(small, "TRT-LLM-W8A8")
    assert avg(large, "COMET-W4Ax") > avg(large, "TRT-LLM-W8A8")
    assert avg(large, "TRT-LLM-W8A8") > avg(large, "TRT-LLM-W4A16")
    assert avg(large, "COMET-W4Ax") > 2.0  # paper: 2.88x
    # Per-shape variance: fixed COMET tiling favours some shapes over
    # others (Section 6.3 analysis).
    comet_large = [r["COMET-W4Ax"] for r in large]
    assert max(comet_large) / min(comet_large) > 1.15
