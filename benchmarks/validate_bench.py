"""Schema gate for the canonical ``BENCH_serving.json`` trajectory file.

``bench_util.emit_json(..., trajectory="serving")`` merges every serving
benchmark's payload into one root-level document that CI uploads as the
cross-commit trajectory artifact.  A malformed emit (missing row keys, a
dropped ``trajectory`` tag, attribution fractions out of range) would
silently corrupt that trajectory for every later commit — so CI runs this
validator right after the bench smoke and fails the build instead.

Usage::

    python benchmarks/validate_bench.py [path/to/BENCH_serving.json]

Exit status 0 when the document validates, 1 with one line per problem
otherwise.  The ``test_*`` functions double as the pytest coverage for
the validator itself (hermetic: they build documents in memory).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "BENCH_serving.json"

#: Keys every ``hotpath_serving`` row must carry.
SERVING_ROW_KEYS = frozenset({
    "system", "requests", "throughput_tok_s", "ttft_p50_ms", "ttft_p99_ms",
    "tpot_p99_ms", "e2e_p99_s", "e2e_max_s", "attribution",
})

#: Keys every ``hotpath_scale`` row must carry.
SCALE_ROW_KEYS = frozenset({
    "requests", "steps", "peak_batch", "throughput_tok_s",
    "scalar_overhead_us_per_step", "vectorized_overhead_us_per_step",
    "overhead_speedup",
})

#: The attribution fraction keys (repro.obs.attrib ATTRIBUTION_KEYS —
#: spelled out so this gate has no src/ import and runs standalone).
ATTRIBUTION_KEYS = frozenset({
    "queue", "gemm", "attention", "kv_dequant", "overhead", "stall",
})

MODES = ("smoke", "full")


def _check_rows(name: str, payload: object, keys: frozenset,
                errors: list) -> list:
    if not isinstance(payload, dict):
        errors.append(f"{name}: payload is not an object")
        return []
    if payload.get("mode") not in MODES:
        errors.append(f"{name}: mode must be one of {MODES}, "
                      f"got {payload.get('mode')!r}")
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append(f"{name}: rows must be a non-empty list")
        return []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"{name}: rows[{i}] is not an object")
            continue
        missing = keys - row.keys()
        if missing:
            errors.append(
                f"{name}: rows[{i}] missing keys {sorted(missing)}"
            )
    return rows


def _check_attribution(name: str, i: int, attribution: object,
                       errors: list) -> None:
    if not isinstance(attribution, dict):
        errors.append(f"{name}: rows[{i}].attribution is not an object")
        return
    missing = ATTRIBUTION_KEYS - attribution.keys()
    if missing:
        errors.append(
            f"{name}: rows[{i}].attribution missing {sorted(missing)}"
        )
    total = 0.0
    for key, value in attribution.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(
                f"{name}: rows[{i}].attribution[{key!r}] is not numeric"
            )
            return
        if not 0.0 <= value <= 1.0:
            errors.append(
                f"{name}: rows[{i}].attribution[{key!r}]={value} "
                "outside [0, 1]"
            )
        total += value
    if total > 0 and abs(total - 1.0) > 1e-6:
        errors.append(
            f"{name}: rows[{i}].attribution fractions sum to {total:.6f}, "
            "expected 1.0"
        )


def validate(doc: object) -> list:
    """All schema problems with a ``BENCH_serving.json`` document."""
    errors: list = []
    if not isinstance(doc, dict):
        return ["document root is not an object"]
    if doc.get("trajectory") != "serving":
        errors.append(
            f"trajectory must be 'serving', got {doc.get('trajectory')!r}"
        )
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        errors.append("benchmarks must be a non-empty object")
        return errors
    if "hotpath_serving" not in benchmarks:
        errors.append("benchmarks.hotpath_serving is required")
    for name, payload in sorted(benchmarks.items()):
        if name == "hotpath_serving":
            rows = _check_rows(name, payload, SERVING_ROW_KEYS, errors)
            for i, row in enumerate(rows):
                if isinstance(row, dict) and "attribution" in row:
                    _check_attribution(
                        name, i, row["attribution"], errors
                    )
        elif name == "hotpath_scale":
            _check_rows(name, payload, SCALE_ROW_KEYS, errors)
        # Unknown benchmark names are allowed (future emitters) as long as
        # they keep the {mode, rows} envelope.
        else:
            _check_rows(name, payload, frozenset(), errors)
    return errors


# ---------------------------------------------------------------- pytest


def _good_doc() -> dict:
    return {
        "trajectory": "serving",
        "benchmarks": {
            "hotpath_serving": {
                "mode": "smoke",
                "rows": [{
                    "system": "comet", "requests": 16,
                    "throughput_tok_s": 1800.0, "ttft_p50_ms": 1.0,
                    "ttft_p99_ms": 2.0, "tpot_p99_ms": 0.3,
                    "e2e_p99_s": 0.01, "e2e_max_s": 0.02,
                    "attribution": {
                        "queue": 0.1, "gemm": 0.5, "attention": 0.2,
                        "kv_dequant": 0.1, "overhead": 0.05, "stall": 0.05,
                    },
                }],
            },
        },
    }


def test_accepts_well_formed_document():
    assert validate(_good_doc()) == []


def test_rejects_wrong_trajectory_and_missing_serving():
    doc = _good_doc()
    doc["trajectory"] = "kernels"
    del doc["benchmarks"]["hotpath_serving"]
    doc["benchmarks"]["other"] = {"mode": "smoke", "rows": [{}]}
    errors = validate(doc)
    assert any("trajectory" in e for e in errors)
    assert any("hotpath_serving is required" in e for e in errors)


def test_rejects_missing_row_keys_and_bad_fractions():
    doc = _good_doc()
    row = doc["benchmarks"]["hotpath_serving"]["rows"][0]
    del row["ttft_p99_ms"]
    row["attribution"]["gemm"] = 1.7
    errors = validate(doc)
    assert any("missing keys" in e and "ttft_p99_ms" in e for e in errors)
    assert any("outside [0, 1]" in e for e in errors)


def test_rejects_fraction_sum_drift():
    doc = _good_doc()
    doc["benchmarks"]["hotpath_serving"]["rows"][0]["attribution"][
        "stall"
    ] = 0.5
    errors = validate(doc)
    assert any("sum to" in e for e in errors)


def test_rejects_empty_rows_and_bad_mode():
    doc = _good_doc()
    doc["benchmarks"]["hotpath_serving"]["rows"] = []
    doc["benchmarks"]["hotpath_serving"]["mode"] = "partial"
    errors = validate(doc)
    assert any("non-empty list" in e for e in errors)
    assert any("mode" in e for e in errors)


def test_committed_document_validates():
    """The repo's own trajectory file must always pass the gate."""
    if not DEFAULT_PATH.exists():
        return  # fresh clone before the first bench run
    errors = validate(json.loads(DEFAULT_PATH.read_text()))
    assert errors == [], "\n".join(errors)


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = Path(argv[0]) if argv else DEFAULT_PATH
    if not path.exists():
        print(f"validate_bench: {path} not found", file=sys.stderr)
        return 1
    try:
        doc = json.loads(path.read_text())
    except ValueError as exc:
        print(f"validate_bench: {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    errors = validate(doc)
    if errors:
        for line in errors:
            print(f"validate_bench: {line}", file=sys.stderr)
        return 1
    print(f"validate_bench: {path} OK "
          f"({len(doc['benchmarks'])} benchmark section(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
