"""Table 2: zero-shot accuracy on five common-sense tasks (synthetic proxy).

Paper claim being reproduced: on the LLaMA-3 family, FMPQ's W4AxKV4 loses
under ~1 accuracy point versus W4A16 OmniQuant and tracks QoQ, while W8A8
is near-lossless.  The tiny GQA zoo models stand in for LLaMA-3-8B/70B.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import clone_model, emit, format_table, fresh_zoo
from repro.baselines.registry import apply_quantization, collect_calibration
from repro.data.tasks import TASK_NAMES, build_task_suite, evaluate_suite

METHOD_ROWS = [
    ("FP16 Full Precision", "fp16"),
    ("W8A8 SmoothQuant", "smoothquant-w8a8"),
    ("W4A16 Omniquant", "omniquant-w4a16"),
    ("W4A8KV4 QoQ", "qoq-w4a8kv4"),
    ("W4AxKV4 FMPQ", "fmpq-w4axkv4"),
]

#: Proxies for the paper's LLaMA-3 8B / 70B rows: both tiny GQA models.
MODELS = ("tiny-llama-3", "tiny-qwen2")


def run_table2(models=MODELS, n_items=40):
    out = {}
    for model_name in models:
        entry = fresh_zoo(model_name)
        suite = build_task_suite(entry.corpus, n_items=n_items, seed=3)
        calib = collect_calibration(entry.model, entry.corpus, num_sequences=6)
        rows = {}
        for label, method in METHOD_ROWS:
            model = clone_model(entry)
            report = apply_quantization(model, method, calib, group_size=16)
            rows[label] = evaluate_suite(model, suite, kv_config=report.kv_config)
        out[model_name] = rows
    return out


@pytest.mark.benchmark(group="table2")
def test_table2_zeroshot(benchmark):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    headers = ["model", "method"] + list(TASK_NAMES) + ["avg"]
    rows = []
    for model_name, by_method in results.items():
        for label, _ in METHOD_ROWS:
            acc = by_method[label]
            rows.append(
                [model_name, label]
                + [100 * acc[t] for t in TASK_NAMES]
                + [100 * acc["avg"]]
            )
    emit(
        "table2_zeroshot",
        format_table(
            "Table 2 — zero-shot accuracy (%) on the synthetic task suite",
            headers,
            rows,
            notes=[
                "Paper shape: FMPQ within ~1pt of W4A16 and comparable to QoQ.",
            ],
        ),
    )
    for model_name, by_method in results.items():
        fp16 = by_method["FP16 Full Precision"]["avg"]
        fmpq = by_method["W4AxKV4 FMPQ"]["avg"]
        # FMPQ stays within a few points of full precision.
        assert fmpq > fp16 - 0.08, model_name
        # Scores are well above chance (chance across the suite ~0.35).
        assert np.mean([fp16, fmpq]) > 0.45, model_name
