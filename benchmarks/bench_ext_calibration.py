"""Extension: calibration-set size robustness.

FMPQ's only data dependence is locating outlier channels on a calibration
sample (the paper uses a small sampled set, Section 3.2).  This bench
sweeps the calibration size from 1 to 16 sequences and checks that both
the detected plan (W4A4 fraction) and the resulting perplexity stabilize
almost immediately — outlier channels are so separated from normal ones
that a handful of tokens suffices.
"""

from __future__ import annotations

import pytest

from bench_util import clone_model, emit, format_table, fresh_zoo
from repro.baselines.registry import apply_quantization, collect_calibration
from repro.data.perplexity import evaluate_perplexity

CALIB_SIZES = (1, 2, 4, 8, 16)


def run_calibration_sweep(model_name="tiny-llama-1"):
    entry = fresh_zoo(model_name)
    rows = []
    for n in CALIB_SIZES:
        calib = collect_calibration(
            entry.model, entry.corpus, num_sequences=n, seq_len=48
        )
        model = clone_model(entry)
        report = apply_quantization(model, "fmpq-w4axkv4", calib, group_size=16)
        ppl = evaluate_perplexity(
            model, entry.corpus, num_sequences=8, kv_config=report.kv_config
        )
        rows.append(
            {
                "sequences": n,
                "tokens": n * 48,
                "w4a4_fraction": report.mean_w4a4_fraction,
                "ppl": ppl,
            }
        )
    return rows


@pytest.mark.benchmark(group="ext-calibration")
def test_ext_calibration_robustness(benchmark):
    rows = benchmark.pedantic(run_calibration_sweep, rounds=1, iterations=1)
    emit(
        "ext_calibration",
        format_table(
            "Extension — FMPQ vs calibration set size",
            ["sequences", "tokens", "W4A4 fraction", "perplexity"],
            [
                [r["sequences"], r["tokens"], r["w4a4_fraction"], r["ppl"]]
                for r in rows
            ],
            notes=[
                "Outlier channels separate from normal ones by >10x, so a "
                "few dozen calibration tokens already pin the plan.",
            ],
        ),
    )
    largest = rows[-1]
    for r in rows[1:]:  # from 2 sequences onward everything is stable
        assert r["w4a4_fraction"] == pytest.approx(
            largest["w4a4_fraction"], abs=0.15
        )
        assert r["ppl"] == pytest.approx(largest["ppl"], rel=0.03)
    # Even a single sequence yields a usable model.
    assert rows[0]["ppl"] < largest["ppl"] * 1.10
