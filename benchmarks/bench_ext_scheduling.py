"""Extension: serving-scheduler integrations (paper Section 7).

The Discussion lists operator/scheduling optimizations from the serving
literature (Sarathi-Serve's chunked prefill, vLLM's preemptive paging) as
complementary to COMET.  This bench quantifies both on the COMET engine:

* chunked prefill vs whole-prompt prefill: worst decode stall and TTFT
  under an interactive workload with a long arriving prompt;
* optimistic admission (preemption) vs full-sequence reservation under a
  memory-tight configuration.
"""

from __future__ import annotations

import pytest

from bench_util import emit, format_table
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import Request, make_batch_requests
from repro.serving.systems import build_system


def _stall_requests():
    reqs = [Request(i, 64, 256, arrival_time=0.0) for i in range(4)]
    reqs.append(Request(99, 4096, 8, arrival_time=0.05))
    return reqs


def run_chunking():
    cfg = get_model_config("llama-3-8b")
    rows = []
    for chunk in (None, 1024, 512, 256, 128):
        engine = ServingEngine(
            cfg,
            build_system("comet"),
            config=EngineConfig(max_batch=16, prefill_chunk_tokens=chunk),
        )
        rep = engine.run(_stall_requests())
        rows.append(
            {
                "chunk": "whole" if chunk is None else chunk,
                "stall_ms": rep.max_decode_gap * 1e3,
                "throughput": rep.throughput,
            }
        )
    return rows


def run_preemption():
    cfg = get_model_config("llama-3-8b")
    rows = []
    for reserve in (True, False):
        engine = ServingEngine(
            cfg,
            build_system("trtllm-fp16"),
            config=EngineConfig(
                max_batch=64, hbm_bytes=17.5e9, reserve_full_sequence=reserve
            ),
        )
        cap = engine.kv.token_capacity
        per = max(cap // 3, 32)
        reqs = make_batch_requests(6, per // 2, per // 2)
        rep = engine.run(reqs)
        rows.append(
            {
                "mode": "reserve" if reserve else "optimistic",
                "peak_batch": rep.peak_batch,
                "preemptions": rep.preemptions,
                "throughput": rep.throughput,
            }
        )
    return rows


@pytest.mark.benchmark(group="ext-scheduling")
def test_ext_chunked_prefill(benchmark):
    rows = benchmark.pedantic(run_chunking, rounds=1, iterations=1)
    emit(
        "ext_chunked_prefill",
        format_table(
            "Extension (Section 7) — chunked prefill: decode stall vs chunk",
            ["chunk tokens", "max decode stall (ms)", "tput tok/s"],
            [[r["chunk"], r["stall_ms"], r["throughput"]] for r in rows],
            notes=["4 interactive chats + one arriving 4096-token prompt."],
        ),
    )
    whole = rows[0]
    finest = rows[-1]
    # Chunking slashes the stall without hurting throughput materially.
    assert finest["stall_ms"] < 0.2 * whole["stall_ms"]
    assert finest["throughput"] > 0.8 * whole["throughput"]
    # Finer chunks, smaller stalls (monotone).
    stalls = [r["stall_ms"] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(stalls, stalls[1:]))


@pytest.mark.benchmark(group="ext-scheduling")
def test_ext_preemptive_paging(benchmark):
    rows = benchmark.pedantic(run_preemption, rounds=1, iterations=1)
    emit(
        "ext_preemption",
        format_table(
            "Extension (Section 7) — optimistic admission vs full reservation",
            ["mode", "peak batch", "preemptions", "tput tok/s"],
            [
                [r["mode"], r["peak_batch"], r["preemptions"], r["throughput"]]
                for r in rows
            ],
            notes=["Memory-tight (1.5 GB KV pool) FP16 llama-3-8b."],
        ),
    )
    reserve, optimistic = rows
    # Optimistic admission packs more sequences (at the cost of preemptions).
    assert optimistic["peak_batch"] >= reserve["peak_batch"]
    assert optimistic["preemptions"] > 0
    assert reserve["preemptions"] == 0
