"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` module reproduces one table or figure from the paper
(see DESIGN.md Section 4).  Results are written as formatted text tables to
``benchmarks/results/`` so the paper-style rows survive pytest's output
capture, and are also printed (visible with ``pytest -s``).
"""

from __future__ import annotations

import atexit
import json
import os
from pathlib import Path

from repro.model.transformer import Transformer
from repro.training.zoo import ZooEntry, load_zoo_model

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Repository root — canonical ``BENCH_<trajectory>.json`` documents land
#: here (CI uploads them for trend tracking across commits).
REPO_ROOT = Path(__file__).resolve().parent.parent

_metrics_hooked = False


def maybe_emit_metrics() -> None:
    """Honour ``$REPRO_EMIT_METRICS``: when set to a path, enable the
    telemetry subsystem for this benchmark process and write a metrics
    snapshot (Prometheus text + JSON + chrome trace) there at exit.

    Telemetry stays fully disabled when the variable is unset, so the
    benchmarks measure the zero-cost path by default.
    """
    global _metrics_hooked
    path = os.environ.get("REPRO_EMIT_METRICS")
    if not path or _metrics_hooked:
        return
    _metrics_hooked = True
    import repro.obs as obs
    from repro.obs.snapshot import write_snapshot

    obs.enable()
    atexit.register(write_snapshot, path)


def clone_model(entry: ZooEntry) -> Transformer:
    """A fresh unquantized copy of a zoo model."""
    params = {k: v.copy() for k, v in entry.model.get_params().items()}
    return Transformer(entry.model.config, params=params)


def fresh_zoo(name: str) -> ZooEntry:
    return load_zoo_model(name)


def format_table(
    title: str,
    headers: list[str],
    rows: list[list],
    notes: list[str] | None = None,
) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title), ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    if notes:
        lines.append("")
        lines.extend(f"NOTE: {n}" for n in notes)
    lines.append("")
    return "\n".join(lines)


def emit(name: str, text: str) -> None:
    """Write a result table to disk and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)


def emit_json(name: str, payload: dict, trajectory: str | None = None) -> Path:
    """Write a machine-readable result to ``results/{name}.json``.

    Companion to :func:`emit` for benchmarks whose numbers feed trend
    tracking (e.g. the CI ``bench-smoke`` artifact): same results
    directory, one JSON document per benchmark.

    When ``trajectory`` is given, the payload is additionally merged into
    the canonical root-level ``BENCH_<trajectory>.json`` document
    (``{"trajectory": ..., "benchmarks": {name: payload}}``).  Multiple
    benchmarks can contribute to one trajectory file; existing entries
    under other names are preserved, and a corrupt file is rebuilt from
    scratch rather than crashing the bench.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {path}")
    if trajectory is not None:
        root_path = REPO_ROOT / f"BENCH_{trajectory}.json"
        doc: dict = {"trajectory": trajectory, "benchmarks": {}}
        if root_path.is_file():
            try:
                existing = json.loads(root_path.read_text())
                if isinstance(existing.get("benchmarks"), dict):
                    doc["benchmarks"] = existing["benchmarks"]
            except (json.JSONDecodeError, OSError):
                pass
        doc["benchmarks"][name] = payload
        root_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"[bench] wrote {root_path}")
    return path


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)
