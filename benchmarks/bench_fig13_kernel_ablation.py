"""Figure 13: ablation of the W4Ax kernel optimizations.

Paper claims being reproduced (normalized latency, lower is better): the
SIMT-enhanced software pipeline is the largest contributor (paper: 1.69x
degradation without it), followed by fast INT4->INT8 conversion (1.53x)
and weight interleaving (1.27x).  We assert the ordering and that each
flag individually matters; our simulator's conversion/interleave penalties
are shallower than the measured ones (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table
from repro.kernels.tiling import GEMMShape
from repro.kernels.w4ax import W4AxKernel
from repro.model.config import get_model_config

BATCHES = (16, 64, 256)

VARIANTS = [
    ("COMET-W4Ax (full)", {}),
    ("w/o software pipeline", {"software_pipeline": False}),
    ("w/o weight interleaving", {"weight_interleave": False}),
    ("w/o fast conversion", {"fast_conversion": False}),
]


def llama3_shapes():
    shapes = []
    for model in ("llama-3-8b", "llama-3-70b"):
        cfg = get_model_config(model)
        for key in ("wq", "w_gate"):
            n, k = cfg.linear_shapes()[key]
            shapes.append((model, key, n, k))
    return shapes


def run_ablation():
    rows = []
    for batch in BATCHES:
        for model, key, n, k in llama3_shapes():
            shape = GEMMShape(batch, n, k)
            base = W4AxKernel().latency(shape).seconds
            entry = {"batch": batch, "layer": f"{model}:{key}"}
            for label, kwargs in VARIANTS:
                entry[label] = W4AxKernel(**kwargs).latency(shape).seconds / base
            rows.append(entry)
    return rows


@pytest.mark.benchmark(group="fig13")
def test_fig13_kernel_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    labels = [label for label, _ in VARIANTS]
    table = [[r["batch"], r["layer"]] + [r[l] for l in labels] for r in rows]
    means = {l: float(np.mean([r[l] for r in rows])) for l in labels}
    table.append(["avg", ""] + [means[l] for l in labels])
    emit(
        "fig13_kernel_ablation",
        format_table(
            "Figure 13 — normalized W4Ax kernel latency (full = 1.0)",
            ["batch", "layer"] + labels,
            table,
            notes=[
                "Paper degradations: pipeline 1.69x, fast conversion 1.53x, "
                "interleaving 1.27x.",
            ],
        ),
    )
    # Each optimization matters, and the pipeline matters most.
    assert means["w/o software pipeline"] > 1.3
    assert means["w/o fast conversion"] > 1.05
    assert means["w/o weight interleaving"] > 1.03
    assert means["w/o software pipeline"] == max(
        v for l, v in means.items() if l != "COMET-W4Ax (full)"
    )
    assert means["w/o fast conversion"] >= means["w/o weight interleaving"]
