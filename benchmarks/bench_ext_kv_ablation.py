"""Extension: KV cache quantization design space (paper Section 3.2).

The paper asserts channel-wise asymmetric INT4 is the sweet spot for the
KV cache — "negligible impact on accuracy" with ~4x less memory.  This
bench maps the design space around that choice: bit width (2/4/8 vs FP16)
and granularity (per-channel-group vs per-token), reporting perplexity,
cache reconstruction error, and bytes per cached value.

The tiny evaluation models are robust enough that even KV2 barely moves
perplexity, so the bit-width ordering is asserted on the cache
reconstruction error (which provably orders by width) while the paper's
own claim — KV4 near-lossless — is asserted on perplexity.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table, fresh_zoo
from repro.core.intquant import QuantSpec
from repro.core.kvquant import KVQuantConfig, QuantizedKVCache
from repro.data.perplexity import evaluate_perplexity

CONFIGS = [
    ("FP16", None),
    ("KV8 per-channel", KVQuantConfig(spec=QuantSpec(8), group_size=16)),
    ("KV4 per-channel", KVQuantConfig(spec=QuantSpec(4), group_size=16)),
    ("KV4 per-token", KVQuantConfig(spec=QuantSpec(4), granularity="per_token")),
    ("KV2 per-channel", KVQuantConfig(spec=QuantSpec(2), group_size=16)),
]


def _true_kv_tensors(entry, seq_len=48, seed=990_000):
    """Collect real K tensors from a forward pass with an FP16 cache."""
    cache = entry.model.new_cache()  # passthrough FP16
    entry.model.forward(entry.corpus.sample_sequence(seq_len, seed=seed), cache)
    k, v = cache.layer(0).read()
    return k, v


def _reconstruction_error(kv_config, k_tokens):
    cache = QuantizedKVCache(kv_config or KVQuantConfig(enabled=False))
    for t in range(k_tokens.shape[0]):
        cache.append(k_tokens[t])
    recon = cache.dequantized()
    denom = np.linalg.norm(k_tokens) + 1e-12
    return float(np.linalg.norm(recon - k_tokens) / denom)


def run_kv_ablation(model_name="tiny-llama-1"):
    entry = fresh_zoo(model_name)
    k_tokens, _ = _true_kv_tensors(entry)
    rows = []
    for label, kv in CONFIGS:
        ppl = evaluate_perplexity(
            entry.model,
            entry.corpus,
            num_sequences=8,
            seq_len=48,
            kv_config=kv if kv is not None else KVQuantConfig(enabled=False),
        )
        rows.append(
            {
                "label": label,
                "ppl": ppl,
                "recon_err": _reconstruction_error(kv, k_tokens),
                "bytes": 2.0 if kv is None else kv.bytes_per_value,
            }
        )
    return rows


@pytest.mark.benchmark(group="ext-kv")
def test_ext_kv_ablation(benchmark):
    rows = benchmark.pedantic(run_kv_ablation, rounds=1, iterations=1)
    emit(
        "ext_kv_ablation",
        format_table(
            "Extension — KV cache format ablation",
            ["format", "perplexity", "K recon rel-err", "bytes/value",
             "compression"],
            [
                [r["label"], r["ppl"], r["recon_err"], r["bytes"],
                 2.0 / r["bytes"]]
                for r in rows
            ],
            notes=[
                "Paper Section 3.2: channel-wise asymmetric KV4 is "
                "near-lossless at ~4x compression.",
            ],
        ),
    )
    by_ppl = {r["label"]: r["ppl"] for r in rows}
    by_err = {r["label"]: r["recon_err"] for r in rows}
    fp16 = by_ppl["FP16"]
    # Paper claim: KV4 (and KV8) near-lossless perplexity.
    assert by_ppl["KV8 per-channel"] < fp16 * 1.01
    assert by_ppl["KV4 per-channel"] < fp16 * 1.02
    assert by_ppl["KV4 per-token"] < fp16 * 1.02
    # Cache error orders strictly by bit width.
    assert by_err["FP16"] == 0.0
    assert by_err["KV8 per-channel"] < by_err["KV4 per-channel"] / 4
    assert by_err["KV4 per-channel"] < by_err["KV2 per-channel"] / 2
    # Memory ordering sanity.
    bytes_by = {r["label"]: r["bytes"] for r in rows}
    assert (
        bytes_by["KV2 per-channel"]
        < bytes_by["KV4 per-channel"]
        < bytes_by["KV8 per-channel"]
        < 2.0
    )
