"""Figure 3: activation distributions — outliers concentrate in a few
channels.

Paper claims being reproduced: a small fraction of channels (paper: <1% at
LLM scale) carry activations one to two orders of magnitude above typical
values, and the same channels are hot across tokens — the structural fact
FMPQ's permutation exploits.
"""

from __future__ import annotations

import pytest

from bench_util import emit, format_table, fresh_zoo
from repro.analysis.distribution import analyze_activations


def run_distribution(model_name="tiny-llama-1"):
    entry = fresh_zoo(model_name)
    return analyze_activations(entry.model, entry.corpus)


@pytest.mark.benchmark(group="fig3")
def test_fig3_distribution(benchmark):
    dists = benchmark.pedantic(run_distribution, rounds=1, iterations=1)
    rows = [
        [
            d.layer,
            d.num_channels,
            len(d.outlier_channels),
            100 * d.outlier_ratio,
            d.magnitude_ratio,
        ]
        for d in dists.values()
    ]
    emit(
        "fig3_distribution",
        format_table(
            "Figure 3 — activation outlier structure per linear layer",
            ["layer", "channels", "outliers", "outlier %", "magnitude x median"],
            rows,
            notes=[
                "Paper shape: a handful of channels at 10-100x the median.",
            ],
        ),
    )
    flagged = [d for d in dists.values() if len(d.outlier_channels) > 0]
    assert len(flagged) >= len(dists) // 2
    # Outliers are far above typical values, but confined to few channels.
    assert max(d.magnitude_ratio for d in flagged) > 10
    assert all(d.outlier_ratio <= 0.2 for d in dists.values())
