"""Extension: the outlier-handling design space — ignore vs smear vs isolate.

Three strategies exist for 4-bit activations in the literature the paper
engages with:

* **ignore** — naive uniform W4A4 (OmniQuant extension): outliers set the
  per-token scale and normal values vanish (Table 1's collapse row);
* **smear** — QuaRot/SpinQuant rotations (paper citations [4], [32]):
  an orthogonal transform spreads outlier energy across all channels;
* **isolate** — FMPQ (the paper): permute outlier channels into a few
  INT8 blocks and keep the rest INT4.

This bench puts all three on the same models, plus their compute
consequences: rotation keeps everything INT4 (fastest kernel) but pays a
per-layer FP16 rotation; FMPQ pays ~25% INT8 tiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import clone_model, emit, format_table, fresh_zoo
from repro.baselines.registry import apply_quantization, collect_calibration
from repro.data.perplexity import evaluate_perplexity

MODELS = ("tiny-llama-1", "tiny-llama-2", "tiny-mistral")
STRATEGIES = [
    ("FP16", "fp16"),
    ("isolate (FMPQ W4Ax)", "fmpq-w4ax"),
    ("smear (rotated W4A4)", "quarot-w4a4"),
    ("ignore (naive W4A4)", "omniquant-w4a4"),
]


def run_strategies():
    grid = {}
    for model_name in MODELS:
        entry = fresh_zoo(model_name)
        calib = collect_calibration(entry.model, entry.corpus, num_sequences=6)
        row = {}
        for label, method in STRATEGIES:
            model = clone_model(entry)
            report = apply_quantization(model, method, calib, group_size=16)
            row[label] = evaluate_perplexity(
                model, entry.corpus, num_sequences=10, seq_len=48,
                kv_config=report.kv_config,
            )
        grid[model_name] = row
    return grid


@pytest.mark.benchmark(group="ext-outlier-strategies")
def test_ext_outlier_strategies(benchmark):
    grid = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    labels = [label for label, _ in STRATEGIES]
    rows = [[m] + [grid[m][l] for l in labels] for m in grid]
    means = {l: float(np.mean([grid[m][l] for m in grid])) for l in labels}
    rows.append(["mean"] + [means[l] for l in labels])
    emit(
        "ext_outlier_strategies",
        format_table(
            "Extension — outlier strategies: perplexity (lower is better)",
            ["model"] + labels,
            rows,
            notes=[
                "isolate (the paper) ~ FP16; smear recovers most of naive "
                "W4A4's collapse but trails isolate; ignore collapses.",
            ],
        ),
    )
    # The design-space ordering, on the mean across models.
    assert means["isolate (FMPQ W4Ax)"] < means["smear (rotated W4A4)"]
    assert means["smear (rotated W4A4)"] < means["ignore (naive W4A4)"]
    # FMPQ near-lossless; naive clearly degraded.
    assert means["isolate (FMPQ W4Ax)"] < means["FP16"] * 1.05
    assert means["ignore (naive W4A4)"] > means["FP16"] * 1.10
