"""Figure 11: LLaMA-3-8B throughput vs batch size (input/output 1024/512).

Paper claims being reproduced:

* throughput grows steeply with batch (TRT-LLM-FP16 gains 7.52x from
  batch 4 to 64) — large-batch parallelism is essential;
* at equal batch sizes COMET still beats the best TRT-LLM configuration
  (paper: 1.37x average), thanks to the W4Ax kernel;
* COMET can keep scaling to batch sizes where FP16 KV already exhausts
  memory.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import make_batch_requests
from repro.serving.systems import build_system

BATCHES = (4, 8, 16, 32, 64, 128, 256)
SYSTEMS = ("trtllm-fp16", "trtllm-w4a16", "trtllm-w8a8", "comet")
PROMPT, OUT = 1024, 512


def run_sweep():
    cfg = get_model_config("llama-3-8b")
    grid: dict[int, dict[str, float | None]] = {}
    for batch in BATCHES:
        row: dict[str, float | None] = {}
        for sysname in SYSTEMS:
            engine = ServingEngine(
                cfg, build_system(sysname), config=EngineConfig(max_batch=batch)
            )
            if engine.plan.max_batch(PROMPT + OUT) < batch:
                row[sysname] = None  # cannot hold the batch in KV
                continue
            report = engine.run(make_batch_requests(batch, PROMPT, OUT))
            row[sysname] = report.throughput
        grid[batch] = row
    return grid


@pytest.mark.benchmark(group="fig11")
def test_fig11_batch_sweep(benchmark):
    grid = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [batch]
        + [grid[batch][s] if grid[batch][s] is not None else "OOM" for s in SYSTEMS]
        for batch in BATCHES
    ]
    emit(
        "fig11_batch_sweep",
        format_table(
            "Figure 11 — LLaMA-3-8B throughput (tok/s) vs batch, 1024/512",
            ["batch"] + list(SYSTEMS),
            rows,
            notes=[
                "Paper: FP16 batch 64 = 7.52x batch 4; COMET ~1.37x best "
                "TRT-LLM at equal batch.",
            ],
        ),
    )
    fp16 = {b: grid[b]["trtllm-fp16"] for b in BATCHES}
    # Large-batch parallelism: paper's 7.52x from batch 4 -> 64.
    assert fp16[64] / fp16[4] > 4.0
    # COMET beats the best TRT-LLM config at every shared batch size.
    speedups = []
    for b in BATCHES:
        best_trt = max(
            v
            for s, v in grid[b].items()
            if s.startswith("trtllm") and v is not None
        )
        assert grid[b]["comet"] > best_trt, b
        speedups.append(grid[b]["comet"] / best_trt)
    # Paper reports a 1.37x average advantage at equal batch.
    assert float(np.mean(speedups)) > 1.2
    # Throughput is monotone in batch for COMET.
    comet = [grid[b]["comet"] for b in BATCHES]
    assert all(b2 > b1 for b1, b2 in zip(comet, comet[1:]))
