"""Table 1: WikiText2 perplexity of quantized LLMs (synthetic-corpus proxy).

Paper claim being reproduced: FMPQ's W4Ax and W4AxKV4 perplexities sit
within a few hundredths of the best W4A16 / W8A8 baselines (and close to
FP16), while a naive full W4A4 quantization degrades perplexity severely.

Our tiny trained models and synthetic corpus shift the absolute numbers,
but the column ordering — the table's content — must reproduce.
"""

from __future__ import annotations

import pytest

from bench_util import clone_model, emit, format_table, fresh_zoo
from repro.baselines.registry import apply_quantization, collect_calibration
from repro.data.perplexity import evaluate_perplexity
from repro.training.zoo import ZOO_SPECS

#: (column label, registry method) in the paper's row order.
METHOD_COLUMNS = [
    ("FP16", "fp16"),
    ("W8A8 SmoothQuant", "smoothquant-w8a8"),
    ("W4A16 GPTQ", "gptq-w4a16"),
    ("W4A16 AWQ", "awq-w4a16"),
    ("W4A16 Omniquant", "omniquant-w4a16"),
    ("W4Ax FMPQ", "fmpq-w4ax"),
    ("W4A4 Omniquant", "omniquant-w4a4"),
    ("W4A8KV4 QoQ", "qoq-w4a8kv4"),
    ("W4AxKV4 FMPQ", "fmpq-w4axkv4"),
]

MODELS = sorted(ZOO_SPECS)


def run_table1(models=MODELS, num_sequences=8, seq_len=48):
    """Compute the full perplexity grid."""
    grid = {}
    for model_name in models:
        entry = fresh_zoo(model_name)
        calib = collect_calibration(entry.model, entry.corpus, num_sequences=6)
        row = {}
        for label, method in METHOD_COLUMNS:
            model = clone_model(entry)
            report = apply_quantization(model, method, calib, group_size=16)
            row[label] = evaluate_perplexity(
                model,
                entry.corpus,
                num_sequences=num_sequences,
                seq_len=seq_len,
                kv_config=report.kv_config,
            )
        grid[model_name] = row
    return grid


@pytest.mark.benchmark(group="table1")
def test_table1_perplexity(benchmark):
    grid = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    headers = ["model"] + [label for label, _ in METHOD_COLUMNS]
    rows = [
        [model] + [grid[model][label] for label, _ in METHOD_COLUMNS]
        for model in grid
    ]
    emit(
        "table1_perplexity",
        format_table(
            "Table 1 — perplexity (synthetic-corpus proxy for WikiText2)",
            headers,
            rows,
            notes=[
                "Paper shape: FMPQ within noise of W8A8/W4A16; full W4A4 collapses.",
                "Tiny trained models; absolute values differ from the paper's.",
            ],
        ),
    )
    # Paper-shape assertions across the grid.
    for model, row in grid.items():
        fp16 = row["FP16"]
        assert row["W4AxKV4 FMPQ"] < fp16 * 1.12, model
        assert row["W4A4 Omniquant"] > row["W4AxKV4 FMPQ"] * 1.05, model
