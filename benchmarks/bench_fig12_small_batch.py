"""Figure 12: normalized throughput across LLMs at batch size 4.

Paper claims being reproduced: in the memory-bound small-batch regime,
weight compression dominates — TRT-LLM-W4A16 beats W8A8 (paper: 1.16x),
and COMET still beats W4A16 (paper: 1.18x) without any batch-parallelism
help, averaging 2.20x over FP16.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import make_batch_requests
from repro.serving.systems import build_system

MODELS = ("mistral-7b", "llama-3-8b", "llama-2-13b", "llama-1-30b", "llama-3-70b")
SYSTEMS = ("trtllm-fp16", "trtllm-w4a16", "trtllm-w8a8", "comet")
BATCH = 4
PROMPT, OUT = 128, 128


def run_fig12():
    grid = {}
    for model_name in MODELS:
        cfg = get_model_config(model_name)
        row = {}
        for sysname in SYSTEMS:
            try:
                engine = ServingEngine(
                    cfg, build_system(sysname), config=EngineConfig(max_batch=BATCH)
                )
            except ValueError:
                row[sysname] = None
                continue
            report = engine.run(make_batch_requests(BATCH, PROMPT, OUT))
            row[sysname] = report.throughput
        grid[model_name] = row
    return grid


@pytest.mark.benchmark(group="fig12")
def test_fig12_small_batch(benchmark):
    grid = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    rows = []
    for model_name, row in grid.items():
        # Normalize to FP16 when it fits, else to W4A16 (70B-class models).
        base = row["trtllm-fp16"] or row["trtllm-w4a16"]
        rows.append(
            [model_name]
            + [
                (row[s] / base if row[s] is not None else "OOM")
                for s in SYSTEMS
            ]
        )
    emit(
        "fig12_small_batch",
        format_table(
            f"Figure 12 — normalized throughput at batch {BATCH} "
            "(TRT-LLM-FP16 = 1.0)",
            ["model"] + list(SYSTEMS),
            rows,
            notes=[
                "Paper: COMET 2.20x over FP16, 1.43x over W8A8, 1.18x over "
                "W4A16 at batch 4.",
            ],
        ),
    )
    fits = {m: r for m, r in grid.items() if r["trtllm-fp16"] is not None}
    # Small-batch regime: W4A16 > W8A8 (paper: 1.16x), COMET > W4A16.
    for model_name, row in fits.items():
        assert row["trtllm-w4a16"] > row["trtllm-w8a8"], model_name
        assert row["comet"] > row["trtllm-w4a16"], model_name
    mean_vs_fp16 = float(
        np.mean([r["comet"] / r["trtllm-fp16"] for r in fits.values()])
    )
    assert mean_vs_fp16 > 1.5  # paper: 2.20x
