"""Figure 15: end-to-end ablation — weight-activation quantization vs KV
cache quantization.

Paper claims being reproduced (over TRT-LLM-W4A16): the W4Ax kernel alone
gives ~1.32x, KV4 alone ~1.17x, and the full COMET ~1.82x — the two
optimizations compose because one removes compute cost and the other
removes the memory bottleneck that caps batch size.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import make_batch_requests
from repro.serving.systems import build_system

MODELS = ("llama-3-8b", "llama-2-13b", "llama-1-30b", "llama-3-70b")
SYSTEMS = ("trtllm-w4a16", "comet-w4ax", "comet-kv4", "comet")
PROMPT, OUT = 1024, 512


def run_ablation(max_batch=256):
    grid = {}
    for model_name in MODELS:
        cfg = get_model_config(model_name)
        row = {}
        for sysname in SYSTEMS:
            engine = ServingEngine(
                cfg, build_system(sysname), config=EngineConfig(max_batch=max_batch)
            )
            batch = min(max(engine.plan.max_batch(PROMPT + OUT), 1), max_batch)
            report = engine.run(make_batch_requests(batch, PROMPT, OUT))
            row[sysname] = report.throughput
        grid[model_name] = row
    return grid


@pytest.mark.benchmark(group="fig15")
def test_fig15_e2e_ablation(benchmark):
    grid = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for model_name, row in grid.items():
        base = row["trtllm-w4a16"]
        rows.append([model_name] + [row[s] / base for s in SYSTEMS])
    means = {
        s: float(np.mean([grid[m][s] / grid[m]["trtllm-w4a16"] for m in grid]))
        for s in SYSTEMS
    }
    rows.append(["avg"] + [means[s] for s in SYSTEMS])
    emit(
        "fig15_e2e_ablation",
        format_table(
            "Figure 15 — normalized throughput (TRT-LLM-W4A16 = 1.0), 1024/512",
            ["model"] + list(SYSTEMS),
            rows,
            notes=[
                "Paper: W4Ax-only 1.32x, KV4-only 1.17x, full COMET 1.82x.",
            ],
        ),
    )
    # Each component helps alone; the combination is the best everywhere.
    assert means["comet-w4ax"] > 1.1
    assert means["comet-kv4"] > 1.05
    assert means["comet"] > means["comet-w4ax"]
    assert means["comet"] > means["comet-kv4"]
    assert means["comet"] > 1.5  # paper: 1.82x
    for model_name, row in grid.items():
        assert row["comet"] == max(row.values()), model_name
