"""Extension: weight bit-width sweep — why the paper stops at 4 bits.

Sweeps group-wise clip-search weight quantization from INT8 down to INT2
on the trained zoo models, reporting perplexity and weight memory.  The
expected shape: INT8 and INT4 (with clipping) are near-lossless, INT3 adds
visible damage, INT2 collapses — the standard PTQ cliff that makes W4 the
deployment sweet spot (and motivates W4A4/W4A8 rather than W2/W3).
"""

from __future__ import annotations

import pytest

from bench_util import clone_model, emit, format_table, fresh_zoo
from repro.baselines.wrappers import WeightOnlyLinear
from repro.core.intquant import QuantSpec
from repro.core.weightquant import quantize_weight
from repro.data.perplexity import evaluate_perplexity

BIT_WIDTHS = (8, 4, 3, 2)


def quantize_weights_only(model, bits, group_size=16):
    spec = QuantSpec(bits=bits)
    for name, linear in model.named_linears().items():
        qw = quantize_weight(linear.weight, group_size=group_size, spec=spec)
        model.replace_linear(
            name, WeightOnlyLinear(qw, bias=linear.bias, name=name)
        )


def run_bit_sweep(model_name="tiny-llama-1"):
    entry = fresh_zoo(model_name)
    rows = [
        {
            "bits": 16,
            "ppl": evaluate_perplexity(entry.model, entry.corpus, num_sequences=8),
            "rel_weight_mem": 1.0,
        }
    ]
    for bits in BIT_WIDTHS:
        model = clone_model(entry)
        quantize_weights_only(model, bits)
        rows.append(
            {
                "bits": bits,
                "ppl": evaluate_perplexity(model, entry.corpus, num_sequences=8),
                "rel_weight_mem": bits / 16.0,
            }
        )
    return rows


@pytest.mark.benchmark(group="ext-weight-bits")
def test_ext_weight_bit_sweep(benchmark):
    rows = benchmark.pedantic(run_bit_sweep, rounds=1, iterations=1)
    emit(
        "ext_weight_bits",
        format_table(
            "Extension — weight-only bit-width sweep (W{b}A16, group 16)",
            ["weight bits", "perplexity", "relative weight memory"],
            [[r["bits"], r["ppl"], r["rel_weight_mem"]] for r in rows],
            notes=[
                "Expected cliff: INT8/INT4 near-lossless, INT3 visible, "
                "INT2 collapses — why W4 is the deployment sweet spot.",
            ],
        ),
    )
    by = {r["bits"]: r["ppl"] for r in rows}
    fp16 = by[16]
    delta = {b: by[b] - fp16 for b in BIT_WIDTHS}
    # INT8/INT4 near-lossless; degradation strictly monotone in width.
    assert by[8] < fp16 * 1.005
    assert by[4] < fp16 * 1.05
    assert delta[3] > delta[4]
    assert delta[2] > delta[3]
    # The cliff steepens super-linearly: the 2-bit penalty is many times
    # the 4-bit penalty.  (Tiny models are far more robust than real LLMs,
    # where INT2 RTN is catastrophic; the *shape* is what transfers.)
    assert delta[2] > 5 * delta[4]
