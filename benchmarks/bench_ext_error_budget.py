"""Extension: quantization error budget across the zoo models.

Decomposes the W4AxKV4 perplexity cost into weight, activation, and KV
terms per model (see ``repro.analysis.error_budget``).  The decomposition
is the quantitative version of the paper's Section 3 argument: after
outlier clustering, activation quantization is no longer the dominant
error source — naive W4A4's term is an order of magnitude larger.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table, fresh_zoo
from repro.analysis.error_budget import compute_error_budget

MODELS = ("tiny-llama-1", "tiny-llama-3", "tiny-mistral")


def run_budgets():
    out = {}
    for name in MODELS:
        entry = fresh_zoo(name)
        out[name] = compute_error_budget(
            entry.model, entry.corpus, num_sequences=12, seq_len=64
        )
    return out


@pytest.mark.benchmark(group="ext-error-budget")
def test_ext_error_budget(benchmark):
    budgets = benchmark.pedantic(run_budgets, rounds=1, iterations=1)
    rows = []
    for name, b in budgets.items():
        rows.append(
            [
                name,
                b.fp16_ppl,
                b.delta("weights_only"),
                b.delta("activations_only"),
                b.delta("activations_naive"),
                b.delta("kv_only"),
                b.delta("combined"),
            ]
        )
    emit(
        "ext_error_budget",
        format_table(
            "Extension — perplexity-delta budget of W4AxKV4 (vs FP16)",
            ["model", "fp16 ppl", "+weights", "+acts (FMPQ)",
             "+acts (naive W4A4)", "+KV4", "+combined"],
            rows,
            notes=[
                "FMPQ's outlier clustering shrinks the activation term to "
                "the same order as the weight term; naive W4A4's term "
                "dominates everything.",
            ],
        ),
    )
    # Per-model: the full deployment stays near-lossless and never worse
    # than the naive activation scheme by a meaningful margin.
    for name, b in budgets.items():
        assert b.delta("combined") < 0.15, name
        assert b.delta("combined") < b.delta("activations_naive") + 0.05, name
    # Aggregate: naive W4A4's activation term dwarfs FMPQ's (individual
    # tiny models carry +-0.03 ppl of eval noise, so assert on the mean).
    mean_naive = float(np.mean([b.delta("activations_naive") for b in budgets.values()]))
    mean_fmpq = float(np.mean([b.delta("activations_only") for b in budgets.values()]))
    assert mean_naive > 4 * max(mean_fmpq, 1e-3)
