"""FMPQ statistics (paper Section 3.2 / 6.2 claims) and block-size ablation.

Claims being reproduced:

* with outlier clustering, >=84% of GEMM volume runs as W4A4 at realistic
  hidden widths (paper: >84% overall, up to 92% for LLaMA-1-30B);
* without the channel permutation, scattered outliers force far more INT8
  blocks;
* the channel permutation itself is a negligible fraction of runtime
  (paper: 0.7%);
* block size trades W4A4 fraction against scale granularity (the DESIGN.md
  ablation): smaller blocks isolate outliers better.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from bench_util import emit, format_table
from repro.core.blockwise import BlockConfig
from repro.core.fmpq import FMPQConfig, calibrate_linear
from repro.gpu.spec import A100_80G_SXM4
from repro.kernels.tiling import GEMMShape
from repro.kernels.w4ax import W4AxKernel


def realistic_layer(channels=4096, outliers=20, seed=0):
    """A realistic-width activation with <1% outlier channels."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(512, channels)).astype(np.float32)
    calib = rng.normal(size=(512, channels)).astype(np.float32)
    hot = rng.choice(channels, size=outliers, replace=False)
    calib[:, hot] *= 50.0
    return w, calib


def run_stats():
    w, calib = realistic_layer()
    results = {}
    for block_size in (64, 128, 256):
        for permute in (True, False):
            cfg = FMPQConfig(
                block=BlockConfig(block_size=block_size), use_permutation=permute
            )
            _, stats = calibrate_linear(w, calib, cfg)
            results[(block_size, permute)] = stats.w4a4_gemm_fraction
    return results


def permutation_overhead_fraction():
    """Wall-clock share of the channel permutation inside a quantized
    forward pass (paper: 0.7% of runtime)."""
    w, calib = realistic_layer()
    layer, _ = calibrate_linear(w, calib, FMPQConfig())
    x = calib[:64]
    t0 = time.perf_counter()
    for _ in range(5):
        layer.permutation.apply_to_activation(x)
    perm_t = (time.perf_counter() - t0) / 5
    t0 = time.perf_counter()
    for _ in range(5):
        layer.forward(x)
    full_t = (time.perf_counter() - t0) / 5
    return perm_t / full_t


@pytest.mark.benchmark(group="stats")
def test_fmpq_w4a4_fraction(benchmark):
    results = benchmark.pedantic(run_stats, rounds=1, iterations=1)
    rows = [
        [bs, "yes" if perm else "no", 100 * frac]
        for (bs, perm), frac in sorted(results.items())
    ]
    overhead = permutation_overhead_fraction()
    emit(
        "stats_fmpq",
        format_table(
            "FMPQ statistics — W4A4 GEMM volume by block size and permutation",
            ["block size", "permutation", "W4A4 %"],
            rows,
            notes=[
                "Paper: >84% of GEMMs in W4A4; permutation <0.7% of runtime.",
                f"Measured permutation overhead here: {100 * overhead:.2f}% "
                "of the (numpy) quantized forward.",
            ],
        ),
    )
    # Paper claim: >= 84% W4A4 at the paper's block size with permutation.
    assert results[(128, True)] >= 0.84
    # Permutation is what makes that possible.
    for bs in (64, 128, 256):
        assert results[(bs, True)] > results[(bs, False)]
    # Smaller blocks isolate outliers at least as well.
    assert results[(64, True)] >= results[(256, True)]
    # Permutation cost is a small fraction of the forward pass.
    assert overhead < 0.10


@pytest.mark.benchmark(group="stats")
def test_w4a4_fraction_vs_kernel_latency(benchmark):
    """Ablation: kernel latency responds linearly-ish to the INT8 mix —
    quantifying what each extra INT8 block costs."""

    def sweep():
        shape = GEMMShape(64, 8192, 8192)
        return {
            frac: W4AxKernel(int8_fraction=frac).latency(shape).seconds
            for frac in (0.0, 0.125, 0.25, 0.5, 1.0)
        }

    lat = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f, s * 1e6, lat[1.0] / s] for f, s in lat.items()]
    emit(
        "stats_int8_mix",
        format_table(
            "Kernel latency vs INT8 k-slice fraction (m=64, 8192x8192)",
            ["int8 fraction", "latency (us)", "speedup vs all-W4A8"],
            rows,
        ),
    )
    fracs = sorted(lat)
    assert all(lat[a] <= lat[b] + 1e-12 for a, b in zip(fracs, fracs[1:]))
    assert lat[1.0] / lat[0.25] > 1.2
