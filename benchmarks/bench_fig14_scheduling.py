"""Figure 14: fine-grained SM scheduling ablation.

Paper claims being reproduced (speedup over the all-W4A8 kernel on LLaMA-3
GEMMs): a naive mixed-precision kernel yields only ~1.2-1.3x despite the
2x-faster INT4 tensor cores; tile remapping recovers to ~1.56-1.60x; tile
decomposition (task stealing) reaches ~1.67-1.71x; and the full COMET-W4Ax
achieves a large fraction of the Oracle W4A4 kernel (paper: 92.7-97.8%).
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table
from repro.gpu.simulator import SchedulePolicy
from repro.kernels.baselines import OracleW4A4
from repro.kernels.tiling import GEMMShape
from repro.kernels.w4ax import W4AxKernel
from repro.model.config import get_model_config

BATCHES = (16, 64, 256)

POLICIES = [
    ("naive (wave barriers)", SchedulePolicy.WAVE_BARRIER),
    ("barrier minimization", SchedulePolicy.STATIC_QUEUE),
    ("+ tile remapping", SchedulePolicy.BALANCED),
    ("+ tile decomposition", SchedulePolicy.WORK_STEALING),
]


def run_scheduling():
    rows = []
    for model in ("llama-3-8b", "llama-3-70b"):
        cfg = get_model_config(model)
        n, k = cfg.linear_shapes()["w_gate"]
        for batch in BATCHES:
            shape = GEMMShape(batch, n, k)
            w4a8 = W4AxKernel(int8_fraction=1.0).latency(shape).seconds
            oracle = OracleW4A4().latency(shape).seconds
            entry = {"model": model, "batch": batch}
            for label, policy in POLICIES:
                lat = W4AxKernel(policy=policy).latency(shape).seconds
                entry[label] = w4a8 / lat
            entry["oracle W4A4"] = w4a8 / oracle
            entry["% of oracle"] = 100.0 * oracle / (
                W4AxKernel().latency(shape).seconds
            )
            rows.append(entry)
    return rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_scheduling(benchmark):
    rows = benchmark.pedantic(run_scheduling, rounds=1, iterations=1)
    labels = [l for l, _ in POLICIES] + ["oracle W4A4", "% of oracle"]
    table = [
        [r["model"], r["batch"]] + [r[l] for l in labels] for r in rows
    ]
    means = {l: float(np.mean([r[l] for r in rows])) for l in labels}
    table.append(["avg", ""] + [means[l] for l in labels])
    emit(
        "fig14_scheduling",
        format_table(
            "Figure 14 — speedup over all-W4A8 kernel by scheduling stage",
            ["model", "batch"] + labels,
            table,
            notes=[
                "Paper: naive ~1.2-1.3x, remapping ~1.56-1.60x, decomposition "
                "~1.67-1.71x, COMET at 92.7-97.8% of Oracle W4A4.",
            ],
        ),
    )
    # Monotone improvement through the scheduling stages.
    naive = means["naive (wave barriers)"]
    remap = means["+ tile remapping"]
    steal = means["+ tile decomposition"]
    assert naive < remap < steal
    # Naive gains are limited versus the INT4 tensor cores' 2x potential.
    assert naive < 1.45
    # The full kernel reaches a large fraction of the oracle.
    assert means["% of oracle"] > 70.0
    # Even the oracle cannot reach 2x over W4A8 (paper's closing remark).
    assert means["oracle W4A4"] < 2.0
