"""Hot-path perf harness: decode cost vs history and batched GEMM throughput.

Guards the two vectorized inference hot paths against regressions:

* **KV4 decode reads** — `QuantizedKVCache` memoizes dequantized sealed
  groups, so a decode step only dequantizes the new token plus the pending
  tail.  The bench appends one token and reads the full cache at growing
  history lengths, for the incremental path and for the O(history)
  full-redequant reference; per-step cost must stay flat in history length.
* **Batched packed W4Ax GEMM** — `PackedW4AxGEMM.run` executes all blocks
  of one precision per stacked matmul; the bench sweeps channel-block
  counts against the per-block loop (`run_per_block`) and reports the
  speedup (target: >= 5x at 32+ blocks).
* **Model decode** — end-to-end `greedy_generate` tokens/s on a tiny
  transformer with a KV4 cache, the number a serving stack actually ships.

Run standalone (CI ``bench-smoke`` does exactly this)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke

or under pytest like every other ``bench_*`` module.  Results land in
``benchmarks/results/hotpath_{kvcache,gemm,decode}.{txt,json}``; the JSON
files seed the perf trajectory (uploaded as a CI artifact).  Set
``$REPRO_EMIT_METRICS`` to also capture the ``kvcache.*`` hit/miss and
``kernel.gemm_blocks_batched_total`` counters.
"""

from __future__ import annotations

import argparse
import gc
import time

import numpy as np

from bench_util import emit, emit_json, format_table, maybe_emit_metrics
from repro.core.blockwise import (
    BlockConfig,
    BlockPrecisionPlan,
    quantize_activation_blocks,
)
from repro.core.kvquant import KVQuantConfig
from repro.core.weightquant import quantize_weight
from repro.kernels.functional import PackedW4AxGEMM
from repro.model.config import tiny_config
from repro.model.generation import greedy_generate
from repro.model.kvcache import LayerKVCache
from repro.model.transformer import Transformer

# (history lengths, decode steps timed per point, KV group size)
FULL_KV = dict(histories=(64, 256, 1024, 4096), steps=16, group_size=64)
SMOKE_KV = dict(histories=(16, 64, 256), steps=8, group_size=16)
# (block counts, tokens, block size, out features, timing repeats)
FULL_GEMM = dict(blocks=(4, 8, 16, 32, 64), tokens=4, block_size=64,
                 out_features=128, repeats=30)
SMOKE_GEMM = dict(blocks=(4, 16, 32), tokens=2, block_size=32,
                  out_features=64, repeats=10)
# (prompt length, new tokens per point, history lengths reached via prompt)
FULL_DECODE = dict(prompts=(16, 64, 256), new_tokens=32)
SMOKE_DECODE = dict(prompts=(8, 32), new_tokens=8)
# (requests in the simulated serving trace, concurrency cap)
FULL_SERVING = dict(num_requests=48, max_batch=32)
SMOKE_SERVING = dict(num_requests=16, max_batch=8)
# (queued-request tiers for the high-concurrency scaling bench)
FULL_SCALE = dict(tiers=(1000, 4000, 10000), max_batch=512)
SMOKE_SCALE = dict(tiers=(1000,), max_batch=256)
# Step-overhead speedup floors (vectorized vs scalar engine bookkeeping).
SCALE_SPEEDUP_FLOOR = 5.0    # full run, 4k+ tier (ISSUE 7 acceptance)
SCALE_SMOKE_FLOOR = 2.5      # reduced 1k CI variant, noise headroom


def _timeit(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` calls."""
    fn()  # warm-up
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


# ---------------------------------------------------------------- KV cache


def run_kvcache_bench(
    histories=(64, 256, 1024), steps=16, group_size=64, heads=4, head_dim=32
):
    """Per-decode-step cost (append 1 token + full read) vs history length."""
    rng = np.random.default_rng(0)
    rows = []
    for hist in histories:
        cache = LayerKVCache(KVQuantConfig(group_size=group_size))
        slab = rng.normal(size=(hist, heads, head_dim)).astype(np.float32)
        cache.append(slab, slab)
        cache.read()  # materialize the memo before timing

        def step(incremental: bool) -> None:
            tok = rng.normal(size=(1, heads, head_dim)).astype(np.float32)
            cache.append(tok, tok)
            if incremental:
                cache.read()
            else:
                cache.k.dequantized_uncached()
                cache.v.dequantized_uncached()

        cached_s = _timeit(lambda: step(True), steps)
        uncached_s = _timeit(lambda: step(False), steps)
        rows.append(
            {
                "history": int(hist),
                "cached_us_per_step": cached_s * 1e6,
                "uncached_us_per_step": uncached_s * 1e6,
                "speedup": uncached_s / cached_s,
            }
        )
    return rows


# -------------------------------------------------------------------- GEMM


def run_gemm_bench(
    blocks=(4, 8, 16, 32, 64),
    tokens=4,
    block_size=64,
    out_features=128,
    repeats=30,
    high_fraction=0.25,
):
    """Batched vs per-block packed-GEMM latency across channel-block counts."""
    rng = np.random.default_rng(1)
    rows = []
    for nblocks in blocks:
        in_f = nblocks * block_size
        w = rng.normal(size=(out_features, in_f)).astype(np.float32) * 0.2
        x = rng.normal(size=(tokens, in_f)).astype(np.float32)
        qw = quantize_weight(w, group_size=block_size)
        plan = BlockPrecisionPlan(
            config=BlockConfig(block_size=block_size),
            is_high=rng.random(nblocks) < high_fraction,
        )
        qact = quantize_activation_blocks(x, plan)
        gemm = PackedW4AxGEMM(qw, plan=plan)
        assert np.array_equal(gemm.run(qact), gemm.run_per_block(qact))
        batched_s = _timeit(lambda: gemm.run(qact), repeats)
        per_block_s = _timeit(lambda: gemm.run_per_block(qact), repeats)
        rows.append(
            {
                "blocks": int(nblocks),
                "batched_us": batched_s * 1e6,
                "per_block_us": per_block_s * 1e6,
                "speedup": per_block_s / batched_s,
            }
        )
    return rows


# ----------------------------------------------------------- model decode


def run_decode_bench(prompts=(16, 64, 256), new_tokens=32):
    """End-to-end KV4 greedy decode tokens/s on a tiny transformer."""
    max_len = max(prompts) + new_tokens + 1
    config = tiny_config(name="hotpath-bench", max_seq_len=max_len)
    model = Transformer(config)
    rng = np.random.default_rng(2)
    rows = []
    for plen in prompts:
        prompt = rng.integers(0, config.vocab_size, size=plen)
        t0 = time.perf_counter()
        out = greedy_generate(
            model, prompt, new_tokens, kv_config=KVQuantConfig()
        )
        elapsed = time.perf_counter() - t0
        assert out.shape == (new_tokens,)
        rows.append(
            {
                "prompt_tokens": int(plen),
                "new_tokens": int(new_tokens),
                "decode_tokens_per_s": new_tokens / elapsed,
                "us_per_token": elapsed / new_tokens * 1e6,
            }
        )
    return rows


# -------------------------------------------------------- simulated serving


def run_serving_bench(num_requests=48, max_batch=32):
    """Simulated serving throughput and latency tails, per system.

    Unlike the wall-clock rows above, these numbers come from the engine's
    *simulated* clock, so they are bit-deterministic across machines —
    exactly what a cross-commit trajectory file wants.  Feeds the canonical
    root-level ``BENCH_serving.json``; each row carries the run's latency
    ``attribution`` fractions (repro.obs.attrib cost ledger) so
    ``repro.cli analyze --baseline`` can flag step-phase regressions.
    """
    from repro.obs import live as live_obs
    from repro.serving.engine import EngineConfig, ServingEngine
    from repro.serving.metrics import LatencyReport
    from repro.serving.systems import build_system
    from repro.serving.workload import make_poisson_trace

    model = tiny_config(name="serving-bench")
    rows = []
    for system_name in ("comet", "trtllm-fp16"):
        engine = ServingEngine(
            model,
            build_system(system_name),
            config=EngineConfig(max_batch=max_batch),
        )
        requests = make_poisson_trace(
            num_requests, arrival_rate=50.0, mean_prompt_len=64,
            mean_new_tokens=32, seed=3,
        )
        live = live_obs.attach(
            window_seconds=1.0, attrib_capacity=num_requests
        )
        try:
            report = engine.run(requests)
        finally:
            live_obs.detach()
        attribution = live.attrib.aggregate()
        lat = LatencyReport.from_requests(requests)
        rows.append(
            {
                "system": system_name,
                "requests": report.requests_completed,
                "throughput_tok_s": report.throughput,
                "ttft_p50_ms": lat.ttft_p50 * 1e3,
                "ttft_p99_ms": lat.ttft_p99 * 1e3,
                "tpot_p99_ms": lat.tpot_p99 * 1e3,
                "e2e_p99_s": lat.e2e_p99,
                "e2e_max_s": lat.e2e_max,
                "attribution": attribution["fractions"],
                "attribution_dominant": attribution["dominant"],
            }
        )
    return rows


# ------------------------------------------------- high-concurrency scale


def _scale_trace(num_requests: int, seed: int = 9):
    """An overload arrival trace with long histories for the scale tiers.

    All requests arrive inside a short burst (the queue goes thousands
    deep) and prompt lengths cycle through a fixed long-history ladder so
    the engine's per-``m`` latency caches hit — the bench then times
    engine *bookkeeping*, not cost-model evaluation.
    """
    from repro.serving.request import Request

    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, 0.25, size=num_requests))
    prompts = (256, 512, 1024, 2048)
    outputs = (64, 96, 128, 192)
    return [
        Request(
            request_id=i,
            prompt_len=prompts[i % len(prompts)],
            max_new_tokens=outputs[i % len(outputs)],
            arrival_time=float(arrivals[i]),
        )
        for i in range(num_requests)
    ]


def run_scale_bench(tiers=(1000, 4000, 10000), max_batch=512):
    """Vectorized vs scalar engine bookkeeping at high concurrency.

    Runs the same overload trace through the engine twice per tier —
    ``EngineConfig.vectorized`` on and off — with a
    :class:`StepPhaseProfiler` attached, and reports the wall-clock
    step-loop overhead (admit + schedule + decode + heartbeat phases;
    the simulated-kernel ``model`` phase is identical work in both modes
    and excluded).  The two reports must be bit-identical — the bench
    asserts it, so the perf row can never come from divergent behavior.
    """
    from repro.serving.engine import EngineConfig, ServingEngine
    from repro.serving.stepprof import StepPhaseProfiler
    from repro.serving.systems import build_system

    model = tiny_config(name="scale-bench")
    rows = []
    for n in tiers:
        outcomes = {}
        for vectorized in (False, True):
            engine = ServingEngine(
                model,
                build_system("comet"),
                config=EngineConfig(
                    max_batch=max_batch, vectorized=vectorized
                ),
            )
            prof = StepPhaseProfiler()
            trace = _scale_trace(n)
            # GC pauses land on whichever phase is active and can dwarf
            # the bookkeeping being measured; collect up front, then
            # disable for the timed run so both modes see zero GC noise.
            gc.collect()
            gc.disable()
            try:
                report = engine.run(trace, profiler=prof)
            finally:
                gc.enable()
            outcomes[vectorized] = (report, prof)
        scalar_rep, scalar_prof = outcomes[False]
        vec_rep, vec_prof = outcomes[True]
        assert scalar_rep == vec_rep, (
            f"vectorized engine diverged at tier {n}"
        )
        scalar_us = scalar_prof.per_step_us()
        vec_us = vec_prof.per_step_us()
        rows.append(
            {
                "requests": int(n),
                "steps": int(vec_rep.engine_steps),
                "throughput_tok_s": vec_rep.throughput,
                "peak_batch": int(vec_rep.peak_batch),
                "scalar_overhead_us_per_step": scalar_us["overhead"],
                "vectorized_overhead_us_per_step": vec_us["overhead"],
                "overhead_speedup": (
                    scalar_us["overhead"] / vec_us["overhead"]
                    if vec_us["overhead"] > 0 else float("inf")
                ),
                "vectorized_phases_us_per_step": {
                    p: vec_us[p] for p in ("admit", "schedule", "decode",
                                           "heartbeat", "model")
                },
                "scalar_phases_us_per_step": {
                    p: scalar_us[p] for p in ("admit", "schedule", "decode",
                                              "heartbeat", "model")
                },
            }
        )
    return rows


# ------------------------------------------------------------- harnessing


def run_all(smoke: bool = False, scale: bool = False) -> dict:
    maybe_emit_metrics()
    kv_args = SMOKE_KV if smoke else FULL_KV
    gemm_args = SMOKE_GEMM if smoke else FULL_GEMM
    decode_args = SMOKE_DECODE if smoke else FULL_DECODE
    serving_args = SMOKE_SERVING if smoke else FULL_SERVING
    results = {
        "mode": "smoke" if smoke else "full",
        "kvcache": run_kvcache_bench(**kv_args),
        "gemm": run_gemm_bench(**gemm_args),
        "decode": run_decode_bench(**decode_args),
        "serving": run_serving_bench(**serving_args),
    }
    if scale:
        results["scale"] = run_scale_bench(
            **(SMOKE_SCALE if smoke else FULL_SCALE)
        )

    kv = results["kvcache"]
    emit(
        "hotpath_kvcache",
        format_table(
            "Hot path — KV4 decode read cost vs cached history",
            ["history", "cached us/step", "full-redequant us/step", "speedup"],
            [
                [r["history"], r["cached_us_per_step"],
                 r["uncached_us_per_step"], r["speedup"]]
                for r in kv
            ],
            notes=[
                "cached = incremental memoized read (the shipped path);",
                "flat cached cost in history = O(new tokens) per decode step.",
            ],
        ),
    )
    gemm = results["gemm"]
    emit(
        "hotpath_gemm",
        format_table(
            "Hot path — batched vs per-block packed W4Ax GEMM",
            ["blocks", "batched us", "per-block us", "speedup"],
            [
                [r["blocks"], r["batched_us"], r["per_block_us"], r["speedup"]]
                for r in gemm
            ],
            notes=["target: >= 5x at 32+ blocks (ISSUE 2 acceptance)."],
        ),
    )
    decode = results["decode"]
    emit(
        "hotpath_decode",
        format_table(
            "Hot path — KV4 greedy decode throughput (tiny transformer)",
            ["prompt", "new tokens", "tokens/s", "us/token"],
            [
                [r["prompt_tokens"], r["new_tokens"],
                 r["decode_tokens_per_s"], r["us_per_token"]]
                for r in decode
            ],
        ),
    )
    serving = results["serving"]
    emit(
        "hotpath_serving",
        format_table(
            "Hot path — simulated serving throughput and latency tails",
            ["system", "requests", "tok/s", "TTFT p99 ms", "e2e p99 s"],
            [
                [r["system"], r["requests"], r["throughput_tok_s"],
                 r["ttft_p99_ms"], r["e2e_p99_s"]]
                for r in serving
            ],
            notes=["simulated clock: deterministic across machines."],
        ),
    )
    if scale:
        sc = results["scale"]
        emit(
            "hotpath_scale",
            format_table(
                "Scaling tier — engine step-loop overhead, vectorized vs scalar",
                ["requests", "steps", "scalar us/step", "vectorized us/step",
                 "speedup"],
                [
                    [r["requests"], r["steps"],
                     r["scalar_overhead_us_per_step"],
                     r["vectorized_overhead_us_per_step"],
                     r["overhead_speedup"]]
                    for r in sc
                ],
                notes=[
                    "overhead = admit + schedule + decode + heartbeat phases",
                    "(wall clock; the simulated `model` phase is excluded);",
                    f"target: >= {SCALE_SPEEDUP_FLOOR:g}x at the 4k tier "
                    "(ISSUE 7 acceptance). Reports are asserted bit-equal.",
                ],
            ),
        )
        emit_json(
            "hotpath_scale", {"mode": results["mode"], "rows": sc},
            trajectory="serving",
        )
    for name in ("kvcache", "gemm", "decode"):
        emit_json(f"hotpath_{name}", {"mode": results["mode"], "rows": results[name]})
    # Simulated serving numbers are deterministic, so they also feed the
    # canonical root-level BENCH_serving.json trajectory document.
    emit_json(
        "hotpath_serving",
        {"mode": results["mode"], "rows": serving},
        trajectory="serving",
    )
    return results


# ------------------------------------------------------------ pytest entry


def test_hotpath_decode_cost_flat_in_history():
    """Incremental reads keep per-step decode cost ~flat as history grows."""
    rows = run_kvcache_bench(**SMOKE_KV)
    first, last = rows[0], rows[-1]
    # 16x more history must not cost anywhere near 16x per step; allow 3x
    # slack for timer noise on tiny workloads.
    assert last["cached_us_per_step"] < 3.0 * first["cached_us_per_step"], rows
    # The full-redequant reference grows with history and must be clearly
    # slower than the incremental path at the largest history.
    assert last["speedup"] > 2.0, rows


def test_hotpath_gemm_batched_beats_per_block():
    """Batched execution is >= 5x the per-block loop at 32+ blocks."""
    rows = run_gemm_bench(**SMOKE_GEMM)
    big = [r for r in rows if r["blocks"] >= 32]
    assert big, rows
    # Local measurements sit at 10-18x; assert 5x with CI noise in mind.
    assert max(r["speedup"] for r in big) >= 5.0, rows


def test_hotpath_emits_results():
    results = run_all(smoke=True)
    assert results["kvcache"] and results["gemm"] and results["decode"]


def test_scale_vectorized_overhead_speedup():
    """The vectorized engine cuts per-step bookkeeping by the smoke floor
    at the 1k tier (the full 4k tier asserts SCALE_SPEEDUP_FLOOR in the
    ``bench-scale`` run); reports are asserted bit-equal inside the bench."""
    rows = run_scale_bench(**SMOKE_SCALE)
    assert rows
    best = max(r["overhead_speedup"] for r in rows)
    assert best >= SCALE_SMOKE_FLOOR, rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes for CI: seconds, not minutes",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="also run the high-concurrency scaling tiers (1k/4k/10k "
        "queued requests; 1k only with --smoke) and enforce the "
        "step-overhead speedup floor",
    )
    args = parser.parse_args()
    results = run_all(smoke=args.smoke, scale=args.scale)
    if args.scale:
        floor = SCALE_SMOKE_FLOOR if args.smoke else SCALE_SPEEDUP_FLOOR
        gate = [
            r for r in results["scale"]
            if r["requests"] >= (1000 if args.smoke else 4000)
        ]
        worst = min(r["overhead_speedup"] for r in gate)
        if worst < floor:
            raise SystemExit(
                f"scale regression: step-overhead speedup {worst:.2f}x "
                f"is below the {floor:g}x floor"
            )


if __name__ == "__main__":
    main()
