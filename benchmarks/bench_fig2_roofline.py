"""Figure 2: roofline analysis of activation-activation vs weight-activation
operators under FP16/INT8/INT4.

Paper claims being reproduced: the attention (activation-activation)
operator has fixed intensity ~1 and is memory-bound everywhere, so KV4
raises its attainable throughput ~4x; the linear (weight-activation)
operator crosses into the compute-bound regime at large batch, where INT4
tensor cores double INT8 throughput.
"""

from __future__ import annotations

import pytest

from bench_util import emit, format_table
from repro.analysis.roofline import (
    activation_activation_intensity,
    attainable_tput,
    balance_point,
    roofline_sweep,
)
from repro.gpu.spec import A100_80G_SXM4


def run_roofline():
    return roofline_sweep(A100_80G_SXM4)


@pytest.mark.benchmark(group="fig2")
def test_fig2_roofline(benchmark):
    points = benchmark(run_roofline)
    rows = [
        [p.name, p.intensity, p.attainable / 1e12,
         "memory" if p.memory_bound else "compute"]
        for p in points
    ]
    spec = A100_80G_SXM4
    emit(
        "fig2_roofline",
        format_table(
            "Figure 2 — A100 roofline points",
            ["operator", "ops/byte", "attainable TOPS", "bound"],
            rows,
            notes=[
                f"balance points: fp16={balance_point(spec,'fp16'):.0f}, "
                f"int8={balance_point(spec,'int8'):.0f}, "
                f"int4={balance_point(spec,'int4'):.0f} ops/byte",
            ],
        ),
    )
    by_name = {p.name: p for p in points}
    # Attention memory-bound; KV4 quadruples its attainable throughput.
    assert by_name["attn-fp16"].memory_bound
    assert by_name["attn-kv4"].attainable == pytest.approx(
        4 * by_name["attn-fp16"].attainable
    )
    # Large-batch INT4 linears are compute-bound at 2x the INT8 roof.
    b1024 = by_name["linear-int4-b1024"]
    assert not b1024.memory_bound
    assert b1024.attainable == pytest.approx(
        2 * by_name["linear-int8-b1024"].attainable
    )
    # Batch-1 linears are memory-bound at every precision.
    assert by_name["linear-int4-b1"].memory_bound
    assert by_name["linear-fp16-b1"].memory_bound
    # KV4 also helps the memory-bound attention op more than any tensor
    # core upgrade could (intensity still below every balance point).
    assert activation_activation_intensity(0.5) < balance_point(spec, "fp16")
    assert attainable_tput(spec, 1.0, "fp16") == spec.hbm_bandwidth
