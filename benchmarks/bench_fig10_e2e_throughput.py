"""Figure 10: end-to-end maximum throughput across models and systems.

Paper claims being reproduced (TRT-LLM-W4A16 normalized to 1.0x):

* COMET averages ~2.02x at input/output 1024/512 and ~1.63x at 128/128
  (gains are larger with longer outputs because KV4 relieves the
  decode-phase memory bottleneck);
* COMET beats QServe (paper: ~1.17x on average);
* FP16 cannot serve the 70B-class models on one A100-80G at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit, format_table, maybe_emit_metrics
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import make_batch_requests
from repro.serving.systems import build_system

MODELS = (
    "mistral-7b",
    "llama-3-8b",
    "llama-2-13b",
    "llama-1-30b",
    "llama-3-70b",
    "qwen2-72b",
)
SYSTEMS = ("trtllm-fp16", "trtllm-w4a16", "trtllm-w8a8", "qserve", "comet")
SETTINGS = ((1024, 512), (128, 128))


def run_setting(prompt_len, out_len, models=MODELS, max_batch=256):
    maybe_emit_metrics()
    grid = {}
    for model_name in models:
        cfg = get_model_config(model_name)
        row = {}
        for sysname in SYSTEMS:
            try:
                engine = ServingEngine(
                    cfg,
                    build_system(sysname),
                    config=EngineConfig(max_batch=max_batch),
                )
            except ValueError:
                row[sysname] = None  # OOM
                continue
            batch = min(
                max(engine.plan.max_batch(prompt_len + out_len), 1), max_batch
            )
            report = engine.run(make_batch_requests(batch, prompt_len, out_len))
            row[sysname] = report.throughput
        grid[model_name] = row
    return grid


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("prompt_len,out_len", SETTINGS, ids=["1024-512", "128-128"])
def test_fig10_throughput(benchmark, prompt_len, out_len):
    grid = benchmark.pedantic(
        run_setting, args=(prompt_len, out_len), rounds=1, iterations=1
    )
    rows = []
    ratios = []
    for model_name, row in grid.items():
        base = row["trtllm-w4a16"]
        norm = [
            (row[s] / base if row[s] is not None else "OOM") for s in SYSTEMS
        ]
        rows.append([model_name] + norm)
        ratios.append(row["comet"] / base)
    emit(
        f"fig10_e2e_{prompt_len}_{out_len}",
        format_table(
            f"Figure 10 — normalized throughput, input/output {prompt_len}/{out_len} "
            "(TRT-LLM-W4A16 = 1.0)",
            ["model"] + list(SYSTEMS),
            rows + [["mean COMET"] + [""] * 4 + [float(np.mean(ratios))]],
            notes=["Paper: COMET averages 2.02x (1024/512) and 1.63x (128/128)."],
        ),
    )
    # COMET wins on every model; 70B-class FP16 OOMs.
    for model_name, row in grid.items():
        assert row["comet"] == max(v for v in row.values() if v is not None), model_name
    assert grid["llama-3-70b"]["trtllm-fp16"] is None
    assert grid["qwen2-72b"]["trtllm-fp16"] is None
    # Average gain over TRT-LLM-W4A16 is substantial (paper: 1.63-2.02x).
    assert float(np.mean(ratios)) > 1.4
    # COMET beats QServe on average (paper: 1.17x).
    qr = [
        grid[m]["comet"] / grid[m]["qserve"]
        for m in grid
        if grid[m]["qserve"] is not None
    ]
    assert float(np.mean(qr)) > 1.05
