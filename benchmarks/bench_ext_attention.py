"""Extension: attention-kernel optimization (paper Section 7).

The paper's Discussion projects attention kernels as COMET's next step,
citing FlashAttention and Flash-Decoding, and reports that GEMM and
attention occupy ~65% and ~32% of LLM runtime.  This bench quantifies both
claims on the simulator:

* the runtime breakdown of a COMET engine on a long-context workload;
* end-to-end gains from swapping naive attention for the flash kernels,
  with and without KV4 (they compose: KV4 shrinks the bytes, flash kernels
  stream them at full bandwidth).
"""

from __future__ import annotations

import pytest

from bench_util import emit, format_table
from repro.model.config import get_model_config
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import make_batch_requests
from repro.serving.systems import build_system

MODEL = "llama-3-8b"
PROMPT, OUT, BATCH = 2048, 256, 16


def run_attention_ext():
    cfg = get_model_config(MODEL)
    rows = []
    for sysname in ("trtllm-w4a16", "comet"):
        for attn in ("naive", "flash"):
            engine = ServingEngine(
                cfg,
                build_system(sysname),
                config=EngineConfig(
                    max_batch=BATCH,
                    decode_attention=attn,
                    prefill_attention=attn,
                ),
            )
            rep = engine.run(make_batch_requests(BATCH, PROMPT, OUT))
            bd = rep.runtime_breakdown()
            rows.append(
                {
                    "system": sysname,
                    "attention": attn,
                    "throughput": rep.throughput,
                    "gemm_frac": bd["gemm"],
                    "attn_frac": bd["attention"],
                }
            )
    return rows


@pytest.mark.benchmark(group="ext-attention")
def test_ext_attention(benchmark):
    rows = benchmark.pedantic(run_attention_ext, rounds=1, iterations=1)
    table = [
        [r["system"], r["attention"], r["throughput"],
         100 * r["gemm_frac"], 100 * r["attn_frac"]]
        for r in rows
    ]
    emit(
        "ext_attention",
        format_table(
            f"Extension (paper Section 7) — attention kernels, {MODEL}, "
            f"{PROMPT}/{OUT}, batch {BATCH}",
            ["system", "attention", "tput tok/s", "GEMM %", "attention %"],
            table,
            notes=[
                "Paper: GEMM ~65% / attention ~32% of runtime; flash-style "
                "attention is 'a promising next step' orthogonal to W4Ax.",
            ],
        ),
    )
    by = {(r["system"], r["attention"]): r for r in rows}
    # Flash attention helps both systems (orthogonal to the GEMM kernel).
    assert by[("comet", "flash")]["throughput"] >= by[("comet", "naive")]["throughput"]
    assert (
        by[("trtllm-w4a16", "flash")]["throughput"]
        >= by[("trtllm-w4a16", "naive")]["throughput"]
    )
    # GEMM dominates but attention is a meaningful share (paper: 65/32).
    comet = by[("comet", "flash")]
    assert comet["gemm_frac"] > comet["attn_frac"] > 0.05
    # KV4 + W4Ax (comet) beats W4A16 regardless of the attention kernel.
    assert by[("comet", "naive")]["throughput"] > by[("trtllm-w4a16", "flash")]["throughput"]
