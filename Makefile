# Local aliases matching the CI jobs exactly — same commands, same flags,
# so "it passes locally" means "it passes in CI".

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test staticcheck staticcheck-json staticcheck-baseline lint bench-smoke bench-scale bench-scale-smoke live-obs-smoke validate-bench analyze-smoke

test:
	$(PYTHON) -m pytest -x -q

## Blocking invariant gate (numerics / determinism / obs / API / layering).
staticcheck:
	$(PYTHON) -m repro.cli staticcheck

## CI-identical JSON report (uploaded as the staticcheck-report artifact).
staticcheck-json:
	$(PYTHON) -m repro.cli staticcheck --format json --output staticcheck-report.json

## Regenerate the committed baseline. Review the diff before committing:
## every entry is a grandfathered violation someone must have justified.
staticcheck-baseline:
	$(PYTHON) -m repro.cli staticcheck --write-baseline --baseline staticcheck-baseline.json

## Advisory: requires `pip install -e .[lint]` (ruff + mypy).
lint:
	ruff check src tests
	mypy

bench-smoke:
	$(PYTHON) benchmarks/bench_hotpath.py --smoke

## High-concurrency scaling tiers (1k/4k/10k queued requests): vectorized
## vs scalar engine step-loop overhead, regression-gated at >= 5x (4k tier).
bench-scale:
	$(PYTHON) benchmarks/bench_hotpath.py --scale

## The reduced 1k-request variant CI runs (job: bench-scale-smoke).
bench-scale-smoke:
	$(PYTHON) benchmarks/bench_hotpath.py --scale --smoke

## HTTP endpoints + SLO monitor + flight recorder over an overload run.
live-obs-smoke:
	$(PYTHON) benchmarks/live_obs_smoke.py

## Schema gate for the canonical BENCH_serving.json trajectory document
## (CI runs this right after the bench smoke).
validate-bench:
	$(PYTHON) benchmarks/validate_bench.py

## Record an overload + chaos run with the cost ledger attached, then run
## the post-hoc analyzer end to end (CI job: analyze-smoke).
analyze-smoke:
	$(PYTHON) -m repro.cli top --quiet --once --faults --requests 60 \
		--emit-metrics benchmarks/results/attrib_smoke
	$(PYTHON) -m repro.cli analyze benchmarks/results/attrib_smoke.json \
		--top 5 --json benchmarks/results/attrib_analysis.json
